//! Streaming schedulers for FIR convolution graphs.
//!
//! The §4 data-reuse machinery applied to the simplest overlapping-window
//! dataflow.  Two residency strategies exist, mirroring the
//! accumulator-versus-vector trade-off of the MVM tiling (§4.3):
//!
//! * **window-resident** — keep the current `k` input samples in fast
//!   memory and run each output's accumulation caterpillar to completion;
//!   peak `k·w_in + 2·w_c` (samples + two live partials),
//! * **partial-interleaved** — keep one in-flight partial sum per open
//!   window instead, so only two input samples are ever resident; peak
//!   `(k−1)·w_c + 2·w_in + w_c`-ish (measured exactly, see
//!   [`min_memory`]).
//!
//! Both read every input once and write every output once, so both meet
//! the algorithmic lower bound; which one needs less fast memory depends on
//! the weights — windows win when partials are expensive (Double
//! Accumulator), interleaving wins when everything is one word (Equal).
//! [`schedule`] picks the cheaper strategy that fits.

use pebblyn_core::{Move, PebbleState, Schedule, Weight};
use pebblyn_graphs::conv::ConvGraph;

/// Which residency strategy a schedule uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Hold the `k`-sample window; one live accumulation at a time.
    WindowResident,
    /// Hold one partial per open window; two samples at a time.
    PartialInterleaved,
}

/// Weighted cost of any streaming schedule: the algorithmic lower bound.
pub fn cost(conv: &ConvGraph) -> Weight {
    let w_in = conv.scheme().input_weight();
    let w_c = conv.scheme().compute_weight();
    conv.n() as Weight * w_in + conv.outputs() as Weight * w_c
}

/// Emit the schedule for a specific strategy (always LB-cost; validity
/// requires a budget of at least [`strategy_peak`]).
pub fn schedule_with_strategy(conv: &ConvGraph, strategy: Strategy) -> Schedule {
    match strategy {
        Strategy::WindowResident => window_resident(conv),
        Strategy::PartialInterleaved => partial_interleaved(conv),
    }
}

/// Exact peak fast-memory occupancy of a strategy on this graph,
/// measured by replaying the emitted moves.
pub fn strategy_peak(conv: &ConvGraph, strategy: Strategy) -> Weight {
    let sched = schedule_with_strategy(conv, strategy);
    let g = conv.cdag();
    let mut state = PebbleState::initial(g);
    let mut peak = 0;
    for mv in sched.iter() {
        state.apply(g, mv);
        peak = peak.max(state.red_weight());
    }
    peak
}

/// The smallest budget at which some streaming strategy is valid — and,
/// because streaming cost is the algorithmic lower bound, the minimum fast
/// memory size (Definition 2.6) of the streaming family.
pub fn min_memory(conv: &ConvGraph) -> Weight {
    strategy_peak(conv, Strategy::WindowResident)
        .min(strategy_peak(conv, Strategy::PartialInterleaved))
}

/// Budgeted cost, on the same shape as every other scheduler's
/// `min_cost(g, budget)`: the streaming cost when some strategy fits in
/// `budget`, `None` otherwise.  (Streaming cost is budget-independent —
/// always the algorithmic lower bound — so this only gates on
/// [`min_memory`].)
pub fn min_cost(conv: &ConvGraph, budget: Weight) -> Option<Weight> {
    (budget >= min_memory(conv)).then(|| cost(conv))
}

/// Generate the cheapest-footprint streaming schedule fitting `budget`,
/// or `None` when neither strategy fits.
pub fn schedule(conv: &ConvGraph, budget: Weight) -> Option<Schedule> {
    [Strategy::PartialInterleaved, Strategy::WindowResident]
        .into_iter()
        .find(|&s| strategy_peak(conv, s) <= budget)
        .map(|s| schedule_with_strategy(conv, s))
}

fn window_resident(conv: &ConvGraph) -> Schedule {
    let (k, outputs) = (conv.k(), conv.outputs());
    let mut mv = Vec::new();
    for t in 1..=k {
        mv.push(Move::Load(conv.input(t)));
    }
    for t in 1..=outputs {
        mv.push(Move::Compute(conv.partial(t, 2)));
        for j in 3..=k {
            mv.push(Move::Compute(conv.partial(t, j)));
            mv.push(Move::Delete(conv.partial(t, j - 1)));
        }
        let y = conv.output(t);
        mv.push(Move::Store(y));
        mv.push(Move::Delete(y));
        if t < outputs {
            mv.push(Move::Delete(conv.input(t)));
            mv.push(Move::Load(conv.input(t + k)));
        }
    }
    for t in outputs..=conv.n() {
        mv.push(Move::Delete(conv.input(t)));
    }
    Schedule::from_moves(mv)
}

fn partial_interleaved(conv: &ConvGraph) -> Schedule {
    let (n, k, outputs) = (conv.n(), conv.k(), conv.outputs());
    let mut mv = Vec::new();
    for s in 1..=n {
        mv.push(Move::Load(conv.input(s)));
        if s >= 2 {
            // Windows where x_s is the j-th sample, j = s − t + 1 ∈ [2, k].
            // Ascending t finishes the oldest window (freeing its partial)
            // before opening the newest one, which keeps the number of live
            // partials at k−1 instead of k.
            let t_hi = (s - 1).min(outputs);
            let t_lo = s.saturating_sub(k - 1).max(1);
            for t in t_lo..=t_hi {
                let j = s - t + 1;
                mv.push(Move::Compute(conv.partial(t, j)));
                if j > 2 {
                    mv.push(Move::Delete(conv.partial(t, j - 1)));
                }
                if j == k {
                    let y = conv.output(t);
                    mv.push(Move::Store(y));
                    mv.push(Move::Delete(y));
                }
            }
            mv.push(Move::Delete(conv.input(s - 1)));
        }
    }
    mv.push(Move::Delete(conv.input(n)));
    Schedule::from_moves(mv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{algorithmic_lower_bound, validate_schedule};
    use pebblyn_exact::exact_min_cost;
    use pebblyn_graphs::WeightScheme;

    fn check(n: usize, k: usize, scheme: WeightScheme) {
        let conv = ConvGraph::new(n, k, scheme).unwrap();
        let g = conv.cdag();
        let lb = algorithmic_lower_bound(g);
        for strategy in [Strategy::WindowResident, Strategy::PartialInterleaved] {
            let peak = strategy_peak(&conv, strategy);
            let s = schedule_with_strategy(&conv, strategy);
            let stats = validate_schedule(g, peak, &s)
                .unwrap_or_else(|e| panic!("Conv({n},{k}) {scheme} {strategy:?}: {e}"));
            assert_eq!(stats.cost, lb, "{strategy:?} hits LB");
            assert_eq!(stats.peak_red_weight, peak, "peak measurement is tight");
        }
        let b = min_memory(&conv);
        let s = schedule(&conv, b).expect("feasible at family min");
        let stats = validate_schedule(g, b, &s).unwrap();
        assert_eq!(stats.cost, cost(&conv));
        assert!(schedule(&conv, b - 1).is_none());
    }

    #[test]
    fn small_filters_all_schemes() {
        for scheme in WeightScheme::paper_configs() {
            for (n, k) in [(4, 2), (5, 3), (8, 4), (6, 6), (16, 5)] {
                check(n, k, scheme);
            }
        }
    }

    #[test]
    fn custom_weights() {
        check(
            10,
            3,
            WeightScheme::Custom {
                input: 5,
                compute: 9,
            },
        );
        check(
            10,
            4,
            WeightScheme::Custom {
                input: 9,
                compute: 2,
            },
        );
    }

    #[test]
    fn bci_scale_filter() {
        // A 32-tap filter over a 256-sample window — realistic band-pass
        // front-end dimensions.
        check(256, 32, WeightScheme::Equal(16));
    }

    /// The residency trade-off flips with the weights, exactly like the
    /// MVM tiling's accumulator-vs-vector choice.
    #[test]
    fn strategy_choice_depends_on_weights() {
        // Equal: partials are as cheap as samples — interleaving (2 samples
        // + k−1 partials) beats the window (k samples + 2 partials).
        let eq = ConvGraph::new(16, 6, WeightScheme::Equal(16)).unwrap();
        assert!(
            strategy_peak(&eq, Strategy::PartialInterleaved)
                < strategy_peak(&eq, Strategy::WindowResident)
        );
        // Double Accumulator: partials cost twice a sample — the window
        // wins.
        let da = ConvGraph::new(16, 6, WeightScheme::DoubleAccumulator(16)).unwrap();
        assert!(
            strategy_peak(&da, Strategy::WindowResident)
                < strategy_peak(&da, Strategy::PartialInterleaved)
        );
    }

    /// The family minimum matches the fundamental minimum (exact solver)
    /// on a small instance.
    #[test]
    fn min_memory_is_fundamental_small() {
        let conv = ConvGraph::new(5, 3, WeightScheme::Equal(2)).unwrap();
        let g = conv.cdag();
        let lb = algorithmic_lower_bound(g);
        let b = min_memory(&conv);
        assert_eq!(exact_min_cost(g, b), Some(lb));
        assert_ne!(
            exact_min_cost(g, b - 2),
            Some(lb),
            "one lattice step below the family minimum the LB is unreachable"
        );
    }

    /// Below the streaming minimum the problem is still schedulable (with
    /// extra I/O) — quantified by the exact solver.
    #[test]
    fn exact_quantifies_the_gap_below_min_memory() {
        let conv = ConvGraph::new(4, 2, WeightScheme::Equal(1)).unwrap();
        let g = conv.cdag();
        let lb = algorithmic_lower_bound(g); // 4 inputs + 3 outputs = 7
        assert_eq!(lb, 7);
        assert_eq!(exact_min_cost(g, 3), Some(lb));
        let tight = exact_min_cost(g, pebblyn_core::min_feasible_budget(g)).unwrap();
        assert!(tight >= lb);
    }
}
