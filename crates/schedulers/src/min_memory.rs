//! Minimum fast memory size search — Definition 2.6.
//!
//! Given a scheduler's cost function `cost(b)` and a target (normally the
//! algorithmic lower bound of Proposition 2.4), find the smallest budget on
//! the weight lattice at which the scheduler's cost equals the target.
//!
//! For optimal schedulers `cost(b)` is non-increasing in `b`, so the search
//! can bisect; heuristics (layer-by-layer) are not guaranteed monotone, so
//! the default scans linearly.

use pebblyn_core::{min_feasible_budget, Cdag, Weight};

/// Search options: budget range, lattice step, and monotonicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinMemoryOptions {
    /// Smallest budget to consider (inclusive).
    pub lo: Weight,
    /// Largest budget to consider (inclusive).
    pub hi: Weight,
    /// Budget lattice step — normally the gcd of the node weights; only
    /// multiples of the step above `lo` are probed.
    pub step: Weight,
    /// Whether `cost(b)` is non-increasing in `b` (enables bisection).
    pub monotone: bool,
}

impl MinMemoryOptions {
    /// Sensible options for a graph: from the minimum feasible budget to the
    /// total weight, stepping by the weight gcd, assuming non-monotone.
    pub fn for_graph(graph: &Cdag) -> Self {
        MinMemoryOptions {
            lo: min_feasible_budget(graph),
            hi: graph.total_weight(),
            step: graph.weight_gcd().max(1),
            monotone: false,
        }
    }

    /// Builder-style monotonicity flag.
    pub fn monotone(mut self, yes: bool) -> Self {
        self.monotone = yes;
        self
    }

    /// Builder-style range override.
    pub fn range(mut self, lo: Weight, hi: Weight) -> Self {
        self.lo = lo;
        self.hi = hi;
        self
    }
}

/// The smallest budget `b ∈ {lo, lo+step, …} ∩ [lo, hi]` with
/// `cost_at(b) == Some(target)`, or `None` if no probed budget reaches the
/// target.
///
/// `cost_at(b) = None` means "no valid schedule at this budget".
pub fn min_memory<F>(mut cost_at: F, target: Weight, opts: MinMemoryOptions) -> Option<Weight>
where
    F: FnMut(Weight) -> Option<Weight>,
{
    if opts.lo > opts.hi || opts.step == 0 {
        return None;
    }
    let steps = (opts.hi - opts.lo) / opts.step;
    let budget = |k: Weight| opts.lo + k * opts.step;
    let hits = |cost_at: &mut F, k: Weight| cost_at(budget(k)) == Some(target);

    if opts.monotone {
        if !hits(&mut cost_at, steps) {
            return None;
        }
        // Bisect for the smallest k with cost == target; monotone cost means
        // the hit-set is an up-closed interval of k.
        let (mut lo_k, mut hi_k) = (0, steps);
        while lo_k < hi_k {
            let mid = lo_k + (hi_k - lo_k) / 2;
            if hits(&mut cost_at, mid) {
                hi_k = mid;
            } else {
                lo_k = mid + 1;
            }
        }
        Some(budget(lo_k))
    } else {
        (0..=steps).find(|&k| hits(&mut cost_at, k)).map(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(lo: Weight, hi: Weight, step: Weight, monotone: bool) -> MinMemoryOptions {
        MinMemoryOptions {
            lo,
            hi,
            step,
            monotone,
        }
    }

    #[test]
    fn linear_and_bisect_agree_on_monotone_costs() {
        // cost(b) = max(100, 200 - b), target 100 first reached at b = 100.
        let cost = |b: Weight| Some(100u64.max(200 - b.min(200)));
        let linear = min_memory(cost, 100, opts(0, 300, 7, false));
        let bisect = min_memory(cost, 100, opts(0, 300, 7, true));
        assert_eq!(linear, bisect);
        assert_eq!(linear, Some(105)); // first lattice point >= 100
    }

    #[test]
    fn respects_infeasibility() {
        let cost = |b: Weight| (b >= 50).then_some(if b >= 80 { 10 } else { 20 });
        assert_eq!(min_memory(cost, 10, opts(0, 100, 10, false)), Some(80));
        assert_eq!(min_memory(cost, 10, opts(0, 100, 10, true)), Some(80));
    }

    #[test]
    fn unreachable_target_returns_none() {
        let cost = |_b: Weight| Some(42);
        assert_eq!(min_memory(cost, 10, opts(0, 100, 1, false)), None);
        assert_eq!(min_memory(cost, 10, opts(0, 100, 1, true)), None);
    }

    #[test]
    fn empty_range_returns_none() {
        let cost = |_b: Weight| Some(10);
        assert_eq!(min_memory(cost, 10, opts(10, 5, 1, false)), None);
        assert_eq!(min_memory(cost, 10, opts(0, 10, 0, false)), None);
    }

    #[test]
    fn nonmonotone_scan_finds_first_hit() {
        // A cost that dips to the target and comes back up — bisection
        // would be wrong here, linear scan is required.
        let cost = |b: Weight| Some(if b == 30 || b >= 70 { 5 } else { 9 });
        assert_eq!(min_memory(cost, 5, opts(0, 100, 10, false)), Some(30));
    }
}
