//! The layer-by-layer scheduling baseline — §5.1.
//!
//! Nodes are scheduled layer by layer (`S_2` through `S_{d+1}`), within each
//! layer in index order, alternating direction every layer (boustrophedon)
//! so recently computed values are the first operands of the next layer.
//! When fast memory fills up, red-pebbled nodes are reclaimed in FIFO order
//! of placement:
//!
//! * a node with children still to compute is *spilled* (store + delete —
//!   the expensive case the paper's optimal schedules avoid),
//! * a node whose children are all computed is deleted — after a store if
//!   it is an output that has not been saved yet,
//! * clean nodes (inputs, or already stored) are deleted without a store.
//!
//! Reclamation is lazy — values stay resident until pressure forces them
//! out — which is why this heuristic needs far more fast memory than the
//! optimal schedule to reach the algorithmic lower bound (Fig. 5a/5b,
//! Table 1).

use pebblyn_core::{Cdag, Move, NodeId, Schedule, Weight};
use pebblyn_graphs::Layered;
use std::collections::VecDeque;

/// Traversal options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerByLayerOptions {
    /// Alternate traversal direction every layer (the paper's I/O-reducing
    /// optimization).  `false` always ascends — used by the ablation bench.
    pub boustrophedon: bool,
}

impl Default for LayerByLayerOptions {
    fn default() -> Self {
        LayerByLayerOptions {
            boustrophedon: true,
        }
    }
}

struct State<'a> {
    graph: &'a Cdag,
    budget: Weight,
    moves: Vec<Move>,
    red: Vec<bool>,
    /// Has a blue copy (inputs start true; set by stores).
    blue: Vec<bool>,
    /// Children not yet computed.
    remaining: Vec<usize>,
    /// Red nodes in placement order.
    fifo: VecDeque<NodeId>,
    pinned: Vec<bool>,
    used: Weight,
}

impl<'a> State<'a> {
    fn new(graph: &'a Cdag, budget: Weight) -> Self {
        State {
            graph,
            budget,
            moves: Vec::new(),
            red: vec![false; graph.len()],
            blue: graph.nodes().map(|v| graph.is_source(v)).collect(),
            remaining: graph.nodes().map(|v| graph.out_degree(v)).collect(),
            fifo: VecDeque::new(),
            pinned: vec![false; graph.len()],
            used: 0,
        }
    }

    /// Reclaim fast memory until `extra` more bits fit.  Returns `false`
    /// when every resident node is pinned and the request cannot be met.
    fn make_room(&mut self, extra: Weight) -> bool {
        while self.used + extra > self.budget {
            let Some(pos) = self.fifo.iter().position(|&v| !self.pinned[v.index()]) else {
                return false;
            };
            let v = self.fifo.remove(pos).expect("position is in range");
            let i = v.index();
            let must_save = !self.blue[i] && (self.remaining[i] > 0 || self.graph.is_sink(v));
            if must_save {
                self.moves.push(Move::Store(v));
                self.blue[i] = true;
            }
            self.moves.push(Move::Delete(v));
            self.red[i] = false;
            self.used -= self.graph.weight(v);
        }
        true
    }

    fn make_red(&mut self, v: NodeId) -> bool {
        let i = v.index();
        if self.red[i] {
            return true;
        }
        debug_assert!(
            self.blue[i],
            "layer order guarantees {v} was computed and saved before reuse"
        );
        let w = self.graph.weight(v);
        if !self.make_room(w) {
            return false;
        }
        self.moves.push(Move::Load(v));
        self.red[i] = true;
        self.used += w;
        self.fifo.push_back(v);
        true
    }

    fn compute(&mut self, v: NodeId) -> bool {
        let i = v.index();
        debug_assert!(!self.red[i], "layer traversal computes each node once");
        // Pin the operands (and bring them in) so reclamation cannot evict
        // them mid-computation.
        for &p in self.graph.preds(v) {
            self.pinned[p.index()] = true;
        }
        let ok = self
            .graph
            .preds(v)
            .to_vec()
            .into_iter()
            .all(|p| self.make_red(p))
            && self.make_room(self.graph.weight(v));
        for &p in self.graph.preds(v) {
            self.pinned[p.index()] = false;
        }
        if !ok {
            return false;
        }
        self.moves.push(Move::Compute(v));
        self.red[i] = true;
        self.used += self.graph.weight(v);
        self.fifo.push_back(v);
        for &p in self.graph.preds(v) {
            self.remaining[p.index()] -= 1;
        }
        true
    }

    fn finish(mut self) -> Schedule {
        // Stopping condition: store any output still lacking a blue copy.
        for &v in self.graph.sinks() {
            if !self.blue[v.index()] {
                debug_assert!(self.red[v.index()]);
                self.moves.push(Move::Store(v));
                self.blue[v.index()] = true;
            }
        }
        Schedule::from_moves(self.moves)
    }
}

/// Generate the layer-by-layer schedule, or `None` when the budget is too
/// small for some node's operand set.
pub fn schedule<L: Layered>(
    layered: &L,
    budget: Weight,
    options: LayerByLayerOptions,
) -> Option<Schedule> {
    let graph = layered.cdag();
    let mut st = State::new(graph, budget);
    for (li, layer) in layered.layers().iter().enumerate().skip(1) {
        let descending = options.boustrophedon && li % 2 == 0;
        let order: Vec<NodeId> = if descending {
            layer.iter().rev().copied().collect()
        } else {
            layer.clone()
        };
        for v in order {
            if !st.compute(v) {
                return None;
            }
        }
    }
    Some(st.finish())
}

/// Cost of the layer-by-layer schedule at `budget` (replayed), or `None`
/// when infeasible.
pub fn cost<L: Layered>(
    layered: &L,
    budget: Weight,
    options: LayerByLayerOptions,
) -> Option<Weight> {
    schedule(layered, budget, options).map(|s| s.cost(layered.cdag()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{algorithmic_lower_bound, min_feasible_budget, validate_schedule};
    use pebblyn_graphs::{DwtGraph, MvmGraph, WeightScheme};

    fn check_sweep<L: Layered>(layered: &L) {
        let g = layered.cdag();
        let lb = algorithmic_lower_bound(g);
        let minb = min_feasible_budget(g);
        let maxb = g.total_weight();
        let step = g.weight_gcd().max(1);
        let mut b = minb;
        while b <= maxb {
            if let Some(s) = schedule(layered, b, LayerByLayerOptions::default()) {
                let stats =
                    validate_schedule(g, b, &s).unwrap_or_else(|e| panic!("invalid at b={b}: {e}"));
                assert!(stats.cost >= lb);
            }
            b += step;
        }
        // Ample budget: no spills, exactly the lower bound.
        let s = schedule(layered, maxb, LayerByLayerOptions::default()).unwrap();
        let stats = validate_schedule(g, maxb, &s).unwrap();
        assert_eq!(stats.cost, lb);
    }

    #[test]
    fn dwt_sweep_equal() {
        let dwt = DwtGraph::new(16, 4, WeightScheme::Equal(16)).unwrap();
        check_sweep(&dwt);
    }

    #[test]
    fn dwt_sweep_double_accumulator() {
        let dwt = DwtGraph::new(16, 2, WeightScheme::DoubleAccumulator(16)).unwrap();
        check_sweep(&dwt);
    }

    #[test]
    fn mvm_sweep() {
        let mvm = MvmGraph::new(4, 5, WeightScheme::Equal(8)).unwrap();
        check_sweep(&mvm);
    }

    #[test]
    fn feasible_at_min_feasible_budget() {
        let dwt = DwtGraph::new(8, 3, WeightScheme::Equal(16)).unwrap();
        let minb = min_feasible_budget(dwt.cdag());
        let s = schedule(&dwt, minb, LayerByLayerOptions::default()).unwrap();
        validate_schedule(dwt.cdag(), minb, &s).unwrap();
        assert!(schedule(&dwt, minb - 1, LayerByLayerOptions::default()).is_none());
    }

    #[test]
    fn boustrophedon_helps_on_dwt() {
        // The alternating traversal should never be more expensive at the
        // budgets where the fixed traversal spills.
        let dwt = DwtGraph::new(32, 5, WeightScheme::Equal(16)).unwrap();
        let g = dwt.cdag();
        let minb = min_feasible_budget(g);
        let mut alternating_total = 0u64;
        let mut fixed_total = 0u64;
        let mut b = minb;
        while b <= minb + 32 * 16 {
            let alt = cost(
                &dwt,
                b,
                LayerByLayerOptions {
                    boustrophedon: true,
                },
            );
            let fix = cost(
                &dwt,
                b,
                LayerByLayerOptions {
                    boustrophedon: false,
                },
            );
            if let (Some(a), Some(f)) = (alt, fix) {
                alternating_total += a;
                fixed_total += f;
            }
            b += 16;
        }
        assert!(
            alternating_total <= fixed_total,
            "boustrophedon ({alternating_total}) should beat fixed ({fixed_total}) overall"
        );
    }

    #[test]
    fn needs_much_more_memory_than_optimal_for_lb() {
        // The qualitative Table 1 result: layer-by-layer reaches the lower
        // bound only with a much larger budget than the optimum scheduler.
        let dwt = DwtGraph::new(64, 6, WeightScheme::Equal(16)).unwrap();
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        let opt_min = crate::min_memory::min_memory(
            |b| crate::dwt_opt::min_cost(&dwt, b),
            lb,
            crate::min_memory::MinMemoryOptions::for_graph(g).monotone(true),
        )
        .unwrap();
        let lbl_min = crate::min_memory::min_memory(
            |b| cost(&dwt, b, LayerByLayerOptions::default()),
            lb,
            crate::min_memory::MinMemoryOptions::for_graph(g).monotone(false),
        )
        .unwrap();
        assert!(
            lbl_min >= 4 * opt_min,
            "expected LbL ({lbl_min}) to need >= 4x the optimum ({opt_min})"
        );
    }
}
