//! Optimal WRBPG schedules for k-ary tree graphs — Eq. (6), Lemma 3.7 and
//! Theorem 3.8.
//!
//! For each `(node, budget)` state the paper minimises over every parent
//! *ordering* `σ ∈ Perm(H(v))` and every *keep mask* `δ ∈ {0,1}^k` (keep the
//! parent red while later parents are computed, or spill it for `2·w`):
//!
//! ```text
//! P_t(v, b) = min_{σ, δ}  Σ_i P_t(σ(i), b − Σ_{j<i} δ_j·w_σ(j))
//!                        + 2·Σ_i (1 − δ_i)·w_σ(i)
//! ```
//!
//! Enumerating `k!·2^k` choices is what the paper's Theorem 3.8 accounts
//! for; this implementation instead runs an exact Held–Karp-style subset DP
//! (state = processed parent set × total kept weight) which explores the
//! same decision space in `O(3^k)`-ish work per node without changing the
//! optimum.  [`min_cost_bruteforce`] keeps the literal `σ, δ` enumeration
//! for cross-checking.

use crate::dwt_opt::IoCosts;
use crate::stack::with_large_stack;
use pebblyn_core::{pack_key, Cdag, FastHashMap, Move, NodeId, Schedule, Weight};
use std::rc::Rc;

/// A memoised plan for computing one subtree root with a given budget.
#[derive(Debug)]
enum Plan {
    Leaf {
        v: NodeId,
        cost: Weight,
    },
    Node {
        v: NodeId,
        /// Parents in computation order, each with its plan and keep flag.
        order: Vec<(NodeId, Rc<Plan>, bool)>,
        cost: Weight,
    },
}

impl Plan {
    fn cost(&self) -> Weight {
        match self {
            Plan::Leaf { cost, .. } | Plan::Node { cost, .. } => *cost,
        }
    }

    /// Emit moves.  Post-condition: exactly the subtree root is red.
    fn emit(&self, out: &mut Vec<Move>) {
        match self {
            Plan::Leaf { v, .. } => out.push(Move::Load(*v)),
            Plan::Node { v, order, .. } => {
                for (p, plan, keep) in order {
                    plan.emit(out);
                    if !keep {
                        out.push(Move::Store(*p));
                        out.push(Move::Delete(*p));
                    }
                }
                // Reload the spilled parents (in computation order).
                for (p, _, keep) in order {
                    if !keep {
                        out.push(Move::Load(*p));
                    }
                }
                out.push(Move::Compute(*v));
                for (p, _, _) in order {
                    out.push(Move::Delete(*p));
                }
            }
        }
    }
}

struct Dp<'a> {
    graph: &'a Cdag,
    costs: IoCosts,
    /// Keyed by [`pack_key`]`(node, budget)` — one `u128` per state.
    memo: FastHashMap<u128, Option<Rc<Plan>>>,
}

impl<'a> Dp<'a> {
    fn pebble(&mut self, v: NodeId, b: Weight) -> Option<Rc<Plan>> {
        let key = pack_key(v.index() as u64, b);
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        let plan = self.compute(v, b);
        self.memo.insert(key, plan.clone());
        plan
    }

    fn compute(&mut self, v: NodeId, b: Weight) -> Option<Rc<Plan>> {
        let g = self.graph;
        let preds = g.preds(v).to_vec();
        if preds.is_empty() {
            let w = g.weight(v);
            if w > b {
                return None;
            }
            return Some(Rc::new(Plan::Leaf {
                v,
                cost: self.costs.load * w,
            }));
        }
        let k = preds.len();
        assert!(
            k <= 20,
            "k-ary DP supports in-degree <= 20 (got {k}); the paper targets k = O(log log n)"
        );
        let wsum: Weight = preds.iter().map(|&p| g.weight(p)).sum();
        // Feasibility: v and all parents simultaneously red at M3(v).
        if g.weight(v).checked_add(wsum).is_none_or(|s| s > b) {
            return None;
        }

        // Held–Karp over (processed subset, kept weight): kept weight is the
        // only channel through which earlier keep decisions affect later
        // parents' budgets, so it is a sufficient statistic for δ.  Keys are
        // `pack_key(subset mask, kept weight)` — one `u128` per state.
        #[derive(Clone)]
        struct Partial {
            cost: Weight,
            /// (parent index, plan, keep) appended in order.
            order: Vec<(usize, Rc<Plan>, bool)>,
        }
        let mut frontier: FastHashMap<u128, Partial> = FastHashMap::default();
        frontier.insert(
            pack_key(0, 0),
            Partial {
                cost: 0,
                order: Vec::new(),
            },
        );
        let full = (1u64 << k) - 1;
        for _ in 0..k {
            let mut next: FastHashMap<u128, Partial> = FastHashMap::default();
            for (&state, partial) in &frontier {
                let (mask, kept) = ((state >> 64) as u64, state as u64 as Weight);
                for (i, &p) in preds.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        continue;
                    }
                    if kept >= b {
                        continue;
                    }
                    let sub_budget = b - kept;
                    let Some(plan) = self.pebble(p, sub_budget) else {
                        continue;
                    };
                    let wp = g.weight(p);
                    for keep in [true, false] {
                        let extra = if keep {
                            0
                        } else {
                            (self.costs.load + self.costs.store) * wp
                        };
                        let nkept = if keep { kept + wp } else { kept };
                        let ncost = partial.cost + plan.cost() + extra;
                        let key = pack_key(mask | (1 << i), nkept);
                        let better = next.get(&key).is_none_or(|e| ncost < e.cost);
                        if better {
                            let mut order = partial.order.clone();
                            order.push((i, plan.clone(), keep));
                            next.insert(key, Partial { cost: ncost, order });
                        }
                    }
                }
            }
            frontier = next;
        }

        let best = frontier
            .iter()
            .filter(|(&state, _)| (state >> 64) as u64 == full)
            .min_by_key(|(_, partial)| partial.cost)?;
        let order = best
            .1
            .order
            .iter()
            .map(|(i, plan, keep)| (preds[*i], plan.clone(), *keep))
            .collect();
        Some(Rc::new(Plan::Node {
            v,
            order,
            cost: best.1.cost,
        }))
    }
}

fn tree_root(tree: &Cdag) -> NodeId {
    assert!(
        tree.is_in_tree(),
        "k-ary scheduler requires an in-tree (single sink, out-degree <= 1)"
    );
    tree.sinks()[0]
}

/// Minimum weighted schedule cost for a k-ary tree graph under `budget`
/// (Lemma 3.7: `w_r + P_t(r, B)`), or `None` when no valid schedule exists.
pub fn min_cost(tree: &Cdag, budget: Weight) -> Option<Weight> {
    min_cost_with_costs(tree, budget, IoCosts::default())
}

/// As [`min_cost`] under asymmetric per-bit I/O prices (see
/// [`crate::dwt_opt::IoCosts`]).
pub fn min_cost_with_costs(tree: &Cdag, budget: Weight, costs: IoCosts) -> Option<Weight> {
    let root = tree_root(tree);
    with_large_stack(|| {
        let mut dp = Dp {
            graph: tree,
            costs,
            memo: FastHashMap::default(),
        };
        dp.pebble(root, budget)
            .map(|plan| plan.cost() + costs.store * tree.weight(root))
    })
}

/// Generate an optimal schedule for a k-ary tree graph under `budget`.
pub fn schedule(tree: &Cdag, budget: Weight) -> Option<Schedule> {
    schedule_with_costs(tree, budget, IoCosts::default())
}

/// As [`schedule`] under asymmetric per-bit I/O prices.
pub fn schedule_with_costs(tree: &Cdag, budget: Weight, costs: IoCosts) -> Option<Schedule> {
    let root = tree_root(tree);
    with_large_stack(|| {
        let mut dp = Dp {
            graph: tree,
            costs,
            memo: FastHashMap::default(),
        };
        let plan = dp.pebble(root, budget)?;
        let mut moves = Vec::new();
        plan.emit(&mut moves);
        moves.push(Move::Store(root));
        moves.push(Move::Delete(root));
        Some(Schedule::from_moves(moves))
    })
}

/// Literal implementation of Eq. (6): enumerate every parent permutation and
/// keep mask.  Exponential in `k`; used to cross-check the subset DP.
pub fn min_cost_bruteforce(tree: &Cdag, budget: Weight) -> Option<Weight> {
    let root = tree_root(tree);
    fn pt(
        g: &Cdag,
        v: NodeId,
        b: Weight,
        memo: &mut FastHashMap<u128, Option<Weight>>,
    ) -> Option<Weight> {
        let key = pack_key(v.index() as u64, b);
        if let Some(&hit) = memo.get(&key) {
            return hit;
        }
        let preds = g.preds(v).to_vec();
        let result = (|| {
            if preds.is_empty() {
                return (g.weight(v) <= b).then(|| g.weight(v));
            }
            let wsum: Weight = preds.iter().map(|&p| g.weight(p)).sum();
            if g.weight(v) + wsum > b {
                return None;
            }
            let k = preds.len();
            let mut best: Option<Weight> = None;
            let mut perm: Vec<usize> = (0..k).collect();
            permute(&mut perm, 0, &mut |sigma| {
                for delta in 0..(1u32 << k) {
                    let mut cost: Weight = 0;
                    let mut kept: Weight = 0;
                    let mut ok = true;
                    for (i, &pi) in sigma.iter().enumerate() {
                        let p = preds[pi];
                        if kept > b {
                            ok = false;
                            break;
                        }
                        match pt(g, p, b - kept, memo) {
                            Some(c) => cost += c,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                        if delta & (1 << i) != 0 {
                            kept += g.weight(p);
                        } else {
                            cost += 2 * g.weight(p);
                        }
                    }
                    if ok && best.is_none_or(|bst| cost < bst) {
                        best = Some(cost);
                    }
                }
            });
            best
        })();
        memo.insert(key, result);
        result
    }

    fn permute(v: &mut Vec<usize>, i: usize, f: &mut impl FnMut(&[usize])) {
        if i == v.len() {
            f(v);
            return;
        }
        for j in i..v.len() {
            v.swap(i, j);
            permute(v, i + 1, f);
            v.swap(i, j);
        }
    }

    with_large_stack(|| {
        let mut memo = FastHashMap::default();
        pt(tree, root, budget, &mut memo).map(|c| c + tree.weight(root))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{algorithmic_lower_bound, min_feasible_budget, validate_schedule};
    use pebblyn_graphs::tree::{caterpillar, chain, full_kary, random_weighted_tree};
    use pebblyn_graphs::WeightScheme;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_all_budgets(tree: &Cdag) {
        let lb = algorithmic_lower_bound(tree);
        let minb = min_feasible_budget(tree);
        let maxb = tree.total_weight();
        let step = tree.weight_gcd().max(1);
        let mut prev = None;
        let mut b = minb;
        while b <= maxb {
            let c = min_cost(tree, b);
            let s = schedule(tree, b);
            assert_eq!(c.is_some(), s.is_some());
            if let (Some(c), Some(s)) = (c, s) {
                let stats = validate_schedule(tree, b, &s)
                    .unwrap_or_else(|e| panic!("invalid at b={b}: {e}"));
                assert_eq!(stats.cost, c);
                assert!(c >= lb);
                assert_eq!(
                    min_cost_bruteforce(tree, b),
                    Some(c),
                    "subset DP must match the literal Eq. (6) enumeration at b={b}"
                );
                if let Some(p) = prev {
                    assert!(c <= p);
                }
                prev = Some(c);
            }
            b += step;
        }
        assert_eq!(min_cost(tree, maxb), Some(lb));
    }

    #[test]
    fn binary_tree_all_budgets() {
        let t = full_kary(2, 3, WeightScheme::Equal(2)).unwrap();
        check_all_budgets(&t);
    }

    #[test]
    fn ternary_tree_all_budgets() {
        let t = full_kary(3, 2, WeightScheme::DoubleAccumulator(2)).unwrap();
        check_all_budgets(&t);
    }

    #[test]
    fn chain_all_budgets() {
        let t = chain(6, WeightScheme::Equal(3)).unwrap();
        check_all_budgets(&t);
    }

    #[test]
    fn caterpillar_all_budgets() {
        let t = caterpillar(5, WeightScheme::DoubleAccumulator(2)).unwrap();
        check_all_budgets(&t);
    }

    #[test]
    fn random_weighted_trees_match_bruteforce() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..15 {
            let t = random_weighted_tree(4, 3, 1..=5, &mut rng).unwrap();
            let minb = min_feasible_budget(&t);
            for b in [minb, minb + 2, minb + 5, t.total_weight()] {
                assert_eq!(min_cost(&t, b), min_cost_bruteforce(&t, b));
            }
        }
    }

    #[test]
    fn chain_cost_is_endpoints_at_min_budget() {
        // A chain never needs spills: cost = input + output at every
        // feasible budget.
        let t = chain(10, WeightScheme::Equal(4)).unwrap();
        let minb = min_feasible_budget(&t);
        assert_eq!(min_cost(&t, minb), Some(8));
    }

    #[test]
    fn rejects_non_trees() {
        let g = pebblyn_graphs::testgraphs::diamond(WeightScheme::Equal(1));
        let result = std::panic::catch_unwind(|| min_cost(&g, 100));
        assert!(result.is_err());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let t = chain(20_000, WeightScheme::Equal(1)).unwrap();
        assert_eq!(min_cost(&t, 2), Some(2));
    }

    #[test]
    fn unary_internal_nodes_handled() {
        // k-ary trees permit in-degree 1 internal nodes (k covers max).
        let t = full_kary(1, 5, WeightScheme::Equal(7)).unwrap();
        check_all_budgets(&t);
    }
}
