//! Optimal WRBPG schedules for k-ary tree graphs — Eq. (6), Lemma 3.7 and
//! Theorem 3.8.
//!
//! For each `(node, budget)` state the paper minimises over every parent
//! *ordering* `σ ∈ Perm(H(v))` and every *keep mask* `δ ∈ {0,1}^k` (keep the
//! parent red while later parents are computed, or spill it for `2·w`):
//!
//! ```text
//! P_t(v, b) = min_{σ, δ}  Σ_i P_t(σ(i), b − Σ_{j<i} δ_j·w_σ(j))
//!                        + 2·Σ_i (1 − δ_i)·w_σ(i)
//! ```
//!
//! Enumerating `k!·2^k` choices is what the paper's Theorem 3.8 accounts
//! for; this implementation instead runs an exact Held–Karp-style subset DP
//! (state = processed parent set × total kept weight) which explores the
//! same decision space in `O(3^k)`-ish work per node without changing the
//! optimum.  [`min_cost_bruteforce`] keeps the literal `σ, δ` enumeration
//! for cross-checking.
//!
//! # Optimality caveat (found by the conformance fuzzer)
//!
//! Eq. (6) minimises over *contiguous* evaluations: each parent subtree is
//! pebbled start-to-finish before the next begins (modulo keep/spill of
//! finished roots).  On arbitrary weighted in-trees that is not always
//! globally optimal — a schedule may *pause* a subtree at a light interior
//! node, evaluate a sibling while holding less red weight than the
//! subtree's (heavier) root would occupy, and resume afterwards.  The
//! differential harness in `pebblyn-conformance` shrank a 7-node witness:
//! a chain `8→6→1→6` feeding the sink alongside a branch `8→1`, at the
//! minimum feasible budget 14, where interleaving costs 17 but the best
//! contiguous schedule costs 19.  [`contiguous_evaluation_safe`] gives a
//! sufficient condition under which pausing can never win and the DP is
//! therefore certifiably optimal; outside it the DP remains a valid upper
//! bound (every emitted schedule still replays cleanly).

use crate::dwt_opt::IoCosts;
use crate::stack::with_large_stack;
use pebblyn_core::{pack_key, Cdag, FastHashMap, Move, NodeId, Schedule, Weight};
use std::rc::Rc;

/// A memoised plan for computing one subtree root with a given budget.
#[derive(Debug)]
enum Plan {
    Leaf {
        v: NodeId,
        cost: Weight,
    },
    Node {
        v: NodeId,
        /// Parents in computation order, each with its plan and keep flag.
        order: Vec<(NodeId, Rc<Plan>, bool)>,
        cost: Weight,
    },
}

impl Plan {
    fn cost(&self) -> Weight {
        match self {
            Plan::Leaf { cost, .. } | Plan::Node { cost, .. } => *cost,
        }
    }

    /// Emit moves.  Post-condition: exactly the subtree root is red.
    fn emit(&self, out: &mut Vec<Move>) {
        match self {
            Plan::Leaf { v, .. } => out.push(Move::Load(*v)),
            Plan::Node { v, order, .. } => {
                for (p, plan, keep) in order {
                    plan.emit(out);
                    if !keep {
                        out.push(Move::Store(*p));
                        out.push(Move::Delete(*p));
                    }
                }
                // Reload the spilled parents (in computation order).
                for (p, _, keep) in order {
                    if !keep {
                        out.push(Move::Load(*p));
                    }
                }
                out.push(Move::Compute(*v));
                for (p, _, _) in order {
                    out.push(Move::Delete(*p));
                }
            }
        }
    }
}

struct Dp<'a> {
    graph: &'a Cdag,
    costs: IoCosts,
    /// Keyed by [`pack_key`]`(node, budget)` — one `u128` per state.
    memo: FastHashMap<u128, Option<Rc<Plan>>>,
}

impl<'a> Dp<'a> {
    fn pebble(&mut self, v: NodeId, b: Weight) -> Option<Rc<Plan>> {
        let key = pack_key(v.index() as u64, b);
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        let plan = self.compute(v, b);
        self.memo.insert(key, plan.clone());
        plan
    }

    fn compute(&mut self, v: NodeId, b: Weight) -> Option<Rc<Plan>> {
        let g = self.graph;
        let preds = g.preds(v).to_vec();
        if preds.is_empty() {
            let w = g.weight(v);
            if w > b {
                return None;
            }
            return Some(Rc::new(Plan::Leaf {
                v,
                cost: self.costs.load * w,
            }));
        }
        let k = preds.len();
        assert!(
            k <= 20,
            "k-ary DP supports in-degree <= 20 (got {k}); the paper targets k = O(log log n)"
        );
        let wsum: Weight = preds.iter().map(|&p| g.weight(p)).sum();
        // Feasibility: v and all parents simultaneously red at M3(v).
        if g.weight(v).checked_add(wsum).is_none_or(|s| s > b) {
            return None;
        }

        // Held–Karp over (processed subset, kept weight): kept weight is the
        // only channel through which earlier keep decisions affect later
        // parents' budgets, so it is a sufficient statistic for δ.  Keys are
        // `pack_key(subset mask, kept weight)` — one `u128` per state.
        #[derive(Clone)]
        struct Partial {
            cost: Weight,
            /// (parent index, plan, keep) appended in order.
            order: Vec<(usize, Rc<Plan>, bool)>,
        }
        let mut frontier: FastHashMap<u128, Partial> = FastHashMap::default();
        frontier.insert(
            pack_key(0, 0),
            Partial {
                cost: 0,
                order: Vec::new(),
            },
        );
        let full = (1u64 << k) - 1;
        for _ in 0..k {
            let mut next: FastHashMap<u128, Partial> = FastHashMap::default();
            for (&state, partial) in &frontier {
                let (mask, kept) = ((state >> 64) as u64, state as u64 as Weight);
                for (i, &p) in preds.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        continue;
                    }
                    if kept >= b {
                        continue;
                    }
                    let sub_budget = b - kept;
                    let Some(plan) = self.pebble(p, sub_budget) else {
                        continue;
                    };
                    let wp = g.weight(p);
                    for keep in [true, false] {
                        let extra = if keep {
                            0
                        } else {
                            (self.costs.load + self.costs.store) * wp
                        };
                        let nkept = if keep { kept + wp } else { kept };
                        let ncost = partial.cost + plan.cost() + extra;
                        let key = pack_key(mask | (1 << i), nkept);
                        let better = next.get(&key).is_none_or(|e| ncost < e.cost);
                        if better {
                            let mut order = partial.order.clone();
                            order.push((i, plan.clone(), keep));
                            next.insert(key, Partial { cost: ncost, order });
                        }
                    }
                }
            }
            frontier = next;
        }

        let best = frontier
            .iter()
            .filter(|(&state, _)| (state >> 64) as u64 == full)
            .min_by_key(|(_, partial)| partial.cost)?;
        let order = best
            .1
            .order
            .iter()
            .map(|(i, plan, keep)| (preds[*i], plan.clone(), *keep))
            .collect();
        Some(Rc::new(Plan::Node {
            v,
            order,
            cost: best.1.cost,
        }))
    }
}

/// Sufficient condition for Eq. (6)'s contiguity restriction to be lossless
/// on `tree`: every computed node is no heavier than the lightest node in
/// its subtree (the nodes that transitively feed it).
///
/// Under this condition, any "paused" partial evaluation of a subtree holds
/// a frontier at least as heavy as the finished root, so finishing the
/// subtree first frees at least as much budget for its siblings and
/// contiguous evaluation dominates.  Equal-weight trees satisfy it
/// trivially; so do accumulation trees whose node weights shrink toward the
/// sink.  The witness in the module docs (heavy node above a weight-1
/// interior node) violates it, and there the DP is suboptimal by 2.
pub fn contiguous_evaluation_safe(tree: &Cdag) -> bool {
    // min_sub[v] = lightest weight in the subtree rooted at v (v included),
    // computable in one topological pass since preds precede v.
    let mut min_sub = vec![Weight::MAX; tree.len()];
    for &v in tree.topo_order() {
        let mut m = tree.weight(v);
        for &p in tree.preds(v) {
            m = m.min(min_sub[p.index()]);
        }
        min_sub[v.index()] = m;
        if !tree.is_source(v) && tree.weight(v) > m {
            return false;
        }
    }
    true
}

fn tree_root(tree: &Cdag) -> NodeId {
    assert!(
        tree.is_in_tree(),
        "k-ary scheduler requires an in-tree (single sink, out-degree <= 1)"
    );
    tree.sinks()[0]
}

/// Minimum weighted schedule cost for a k-ary tree graph under `budget`
/// (Lemma 3.7: `w_r + P_t(r, B)`), or `None` when no valid schedule exists.
pub fn min_cost(tree: &Cdag, budget: Weight) -> Option<Weight> {
    min_cost_with_costs(tree, budget, IoCosts::default())
}

/// As [`min_cost`] under asymmetric per-bit I/O prices (see
/// [`crate::dwt_opt::IoCosts`]).
pub fn min_cost_with_costs(tree: &Cdag, budget: Weight, costs: IoCosts) -> Option<Weight> {
    let root = tree_root(tree);
    with_large_stack(|| {
        let mut dp = Dp {
            graph: tree,
            costs,
            memo: FastHashMap::default(),
        };
        dp.pebble(root, budget)
            .map(|plan| plan.cost() + costs.store * tree.weight(root))
    })
}

/// Generate an optimal schedule for a k-ary tree graph under `budget`.
pub fn schedule(tree: &Cdag, budget: Weight) -> Option<Schedule> {
    schedule_with_costs(tree, budget, IoCosts::default())
}

/// As [`schedule`] under asymmetric per-bit I/O prices.
pub fn schedule_with_costs(tree: &Cdag, budget: Weight, costs: IoCosts) -> Option<Schedule> {
    let root = tree_root(tree);
    with_large_stack(|| {
        let mut dp = Dp {
            graph: tree,
            costs,
            memo: FastHashMap::default(),
        };
        let plan = dp.pebble(root, budget)?;
        let mut moves = Vec::new();
        plan.emit(&mut moves);
        moves.push(Move::Store(root));
        moves.push(Move::Delete(root));
        Some(Schedule::from_moves(moves))
    })
}

/// Literal implementation of Eq. (6): enumerate every parent permutation and
/// keep mask.  Exponential in `k`; used to cross-check the subset DP.
pub fn min_cost_bruteforce(tree: &Cdag, budget: Weight) -> Option<Weight> {
    let root = tree_root(tree);
    fn pt(
        g: &Cdag,
        v: NodeId,
        b: Weight,
        memo: &mut FastHashMap<u128, Option<Weight>>,
    ) -> Option<Weight> {
        let key = pack_key(v.index() as u64, b);
        if let Some(&hit) = memo.get(&key) {
            return hit;
        }
        let preds = g.preds(v).to_vec();
        let result = (|| {
            if preds.is_empty() {
                return (g.weight(v) <= b).then(|| g.weight(v));
            }
            let wsum: Weight = preds.iter().map(|&p| g.weight(p)).sum();
            if g.weight(v) + wsum > b {
                return None;
            }
            let k = preds.len();
            let mut best: Option<Weight> = None;
            let mut perm: Vec<usize> = (0..k).collect();
            permute(&mut perm, 0, &mut |sigma| {
                for delta in 0..(1u32 << k) {
                    let mut cost: Weight = 0;
                    let mut kept: Weight = 0;
                    let mut ok = true;
                    for (i, &pi) in sigma.iter().enumerate() {
                        let p = preds[pi];
                        if kept > b {
                            ok = false;
                            break;
                        }
                        match pt(g, p, b - kept, memo) {
                            Some(c) => cost += c,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                        if delta & (1 << i) != 0 {
                            kept += g.weight(p);
                        } else {
                            cost += 2 * g.weight(p);
                        }
                    }
                    if ok && best.is_none_or(|bst| cost < bst) {
                        best = Some(cost);
                    }
                }
            });
            best
        })();
        memo.insert(key, result);
        result
    }

    fn permute(v: &mut Vec<usize>, i: usize, f: &mut impl FnMut(&[usize])) {
        if i == v.len() {
            f(v);
            return;
        }
        for j in i..v.len() {
            v.swap(i, j);
            permute(v, i + 1, f);
            v.swap(i, j);
        }
    }

    with_large_stack(|| {
        let mut memo = FastHashMap::default();
        pt(tree, root, budget, &mut memo).map(|c| c + tree.weight(root))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{algorithmic_lower_bound, min_feasible_budget, validate_schedule};
    use pebblyn_graphs::tree::{caterpillar, chain, full_kary, random_weighted_tree};
    use pebblyn_graphs::WeightScheme;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_all_budgets(tree: &Cdag) {
        let lb = algorithmic_lower_bound(tree);
        let minb = min_feasible_budget(tree);
        let maxb = tree.total_weight();
        let step = tree.weight_gcd().max(1);
        let mut prev = None;
        let mut b = minb;
        while b <= maxb {
            let c = min_cost(tree, b);
            let s = schedule(tree, b);
            assert_eq!(c.is_some(), s.is_some());
            if let (Some(c), Some(s)) = (c, s) {
                let stats = validate_schedule(tree, b, &s)
                    .unwrap_or_else(|e| panic!("invalid at b={b}: {e}"));
                assert_eq!(stats.cost, c);
                assert!(c >= lb);
                assert_eq!(
                    min_cost_bruteforce(tree, b),
                    Some(c),
                    "subset DP must match the literal Eq. (6) enumeration at b={b}"
                );
                if let Some(p) = prev {
                    assert!(c <= p);
                }
                prev = Some(c);
            }
            b += step;
        }
        assert_eq!(min_cost(tree, maxb), Some(lb));
    }

    #[test]
    fn binary_tree_all_budgets() {
        let t = full_kary(2, 3, WeightScheme::Equal(2)).unwrap();
        check_all_budgets(&t);
    }

    #[test]
    fn ternary_tree_all_budgets() {
        let t = full_kary(3, 2, WeightScheme::DoubleAccumulator(2)).unwrap();
        check_all_budgets(&t);
    }

    #[test]
    fn chain_all_budgets() {
        let t = chain(6, WeightScheme::Equal(3)).unwrap();
        check_all_budgets(&t);
    }

    #[test]
    fn caterpillar_all_budgets() {
        let t = caterpillar(5, WeightScheme::DoubleAccumulator(2)).unwrap();
        check_all_budgets(&t);
    }

    #[test]
    fn random_weighted_trees_match_bruteforce() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..15 {
            let t = random_weighted_tree(4, 3, 1..=5, &mut rng).unwrap();
            let minb = min_feasible_budget(&t);
            for b in [minb, minb + 2, minb + 5, t.total_weight()] {
                assert_eq!(min_cost(&t, b), min_cost_bruteforce(&t, b));
            }
        }
    }

    #[test]
    fn chain_cost_is_endpoints_at_min_budget() {
        // A chain never needs spills: cost = input + output at every
        // feasible budget.
        let t = chain(10, WeightScheme::Equal(4)).unwrap();
        let minb = min_feasible_budget(&t);
        assert_eq!(min_cost(&t, minb), Some(8));
    }

    #[test]
    fn contiguity_safety_predicate() {
        // Equal weights: trivially safe.
        assert!(contiguous_evaluation_safe(
            &full_kary(2, 3, WeightScheme::Equal(2)).unwrap()
        ));
        assert!(contiguous_evaluation_safe(
            &chain(8, WeightScheme::Equal(5)).unwrap()
        ));
        // A heavy node above a light interior node: unsafe.
        assert!(!contiguous_evaluation_safe(&fuzzer_witness()));
    }

    /// The shrunk counterexample the conformance fuzzer found (seed 3):
    /// chain 8→6→1→6 into the sink, plus a branch 8→1.  At the minimum
    /// feasible budget the global optimum (17) pauses the chain at the
    /// weight-1 node to evaluate the branch; the best *contiguous*
    /// schedule — Eq. (6)'s whole decision space — costs 19.
    fn fuzzer_witness() -> Cdag {
        let mut b = pebblyn_core::CdagBuilder::new();
        let root = b.node(1, "root");
        let t1 = b.node(6, "t1");
        let t2 = b.node(1, "t2");
        let leaf3 = b.node(8, "leaf3");
        let t4 = b.node(1, "t4");
        let t6 = b.node(6, "t6");
        let t7 = b.node(8, "t7");
        b.edge(t1, root);
        b.edge(t2, root);
        b.edge(t4, t1);
        b.edge(leaf3, t2);
        b.edge(t6, t4);
        b.edge(t7, t6);
        b.build().unwrap()
    }

    #[test]
    fn known_suboptimality_outside_the_safe_regime() {
        let t = fuzzer_witness();
        let minb = min_feasible_budget(&t);
        assert_eq!(minb, 14);
        // The DP is internally consistent (matches the literal Eq. (6)
        // enumeration, emits a valid schedule at its claimed cost)...
        assert_eq!(min_cost(&t, minb), Some(19));
        assert_eq!(min_cost_bruteforce(&t, minb), Some(19));
        let s = schedule(&t, minb).unwrap();
        assert_eq!(validate_schedule(&t, minb, &s).unwrap().cost, 19);
        // ...but interleaved evaluation beats every contiguous order, so
        // the exact optimum is strictly lower.  This pins the gap the
        // conformance fuzzer found; the oracle asserts kary == exact only
        // on contiguous_evaluation_safe trees.
        assert_eq!(pebblyn_exact::exact_min_cost(&t, minb), Some(17));
        // With two extra units of budget the interleaving advantage
        // disappears and the DP is optimal again.
        assert_eq!(
            min_cost(&t, minb + 2),
            pebblyn_exact::exact_min_cost(&t, minb + 2)
        );
    }

    #[test]
    fn rejects_non_trees() {
        let g = pebblyn_graphs::testgraphs::diamond(WeightScheme::Equal(1));
        let result = std::panic::catch_unwind(|| min_cost(&g, 100));
        assert!(result.is_err());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let t = chain(20_000, WeightScheme::Equal(1)).unwrap();
        assert_eq!(min_cost(&t, 2), Some(2));
    }

    #[test]
    fn unary_internal_nodes_handled() {
        // k-ary trees permit in-degree 1 internal nodes (k covers max).
        let t = full_kary(1, 5, WeightScheme::Equal(7)).unwrap();
        check_all_budgets(&t);
    }
}
