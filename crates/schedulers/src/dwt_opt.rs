//! Optimal WRBPG schedule generation for DWT graphs — Algorithm 1 of the
//! paper (Lemmas 3.2–3.4, Theorem 3.5).
//!
//! The algorithm prunes each coefficient node (Lemma 3.2: a coefficient
//! shares both parents with its average sibling and weighs no more, so it
//! can be computed and stored "for free" right before the sibling), leaving
//! a forest of binary in-trees, and then runs the Eq. (2) dynamic program
//! over `(node, remaining budget)` states:
//!
//! ```text
//! P(v, b) = ∞                                        if w_v + w_p1 + w_p2 > b
//!         = min( P(p1, b) + P(p2, b)        + 2·w_p1 ,   – spill p1, recompute-free reload
//!                P(p1, b) + P(p2, b − w_p1)           ,   – keep p1 red
//!                P(p2, b) + P(p1, b)        + 2·w_p2 ,
//!                P(p2, b) + P(p1, b − w_p2)           )
//! P(v, b) = w_v                                      if H(v) = ∅
//! ```
//!
//! The DP memoises *plans* (decision + cached cost) rather than move lists,
//! so memory stays proportional to the number of `(node, budget)` states;
//! the concrete schedule is emitted in one walk over the plan forest.

use crate::stack::with_large_stack;
use pebblyn_core::{pack_key, Cdag, FastHashMap, Move, NodeId, Schedule, Weight};
use pebblyn_graphs::DwtGraph;
use std::rc::Rc;

/// Per-bit I/O cost scales: the classic game uses `(1, 1)`; asymmetric
/// scales model technologies where writes to slow memory cost more than
/// reads (e.g. embedded Flash in implanted devices).  The DP is exact for
/// any non-negative scales — certified against the exhaustive solver in
/// this crate's test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCosts {
    /// Cost per bit of an M1 (slow → fast) transfer.
    pub load: Weight,
    /// Cost per bit of an M2 (fast → slow) transfer.
    pub store: Weight,
}

impl Default for IoCosts {
    fn default() -> Self {
        IoCosts { load: 1, store: 1 }
    }
}

/// A memoised decision for one `(node, budget)` state.
#[derive(Debug)]
enum Plan {
    /// Leaf: `M1(v)`.
    Leaf { v: NodeId, cost: Weight },
    /// Internal node: compute `first` then `second`, optionally spilling the
    /// first parent to slow memory while the second is computed; then emit
    /// the pruned sibling (if any) and the node itself.
    Node {
        v: NodeId,
        /// The pruned coefficient sibling to emit right before `v`.
        sibling: Option<NodeId>,
        /// Plan for the parent computed first.
        first: Rc<Plan>,
        /// Plan for the parent computed second.
        second: Rc<Plan>,
        /// The parent nodes in (first, second) order.
        parents: (NodeId, NodeId),
        /// Whether the first parent is spilled (store + delete + reload)
        /// while the second is computed.
        spill_first: bool,
        cost: Weight,
    },
}

impl Plan {
    fn cost(&self) -> Weight {
        match self {
            Plan::Leaf { cost, .. } | Plan::Node { cost, .. } => *cost,
        }
    }

    /// Append this plan's move sequence.  Post-condition: of this subtree's
    /// nodes, exactly the root carries a red pebble; its sibling (if any)
    /// has been computed, stored and evicted.
    fn emit(&self, out: &mut Vec<Move>) {
        match self {
            Plan::Leaf { v, .. } => out.push(Move::Load(*v)),
            Plan::Node {
                v,
                sibling,
                first,
                second,
                parents,
                spill_first,
                ..
            } => {
                first.emit(out);
                if *spill_first {
                    out.push(Move::Store(parents.0));
                    out.push(Move::Delete(parents.0));
                }
                second.emit(out);
                if *spill_first {
                    out.push(Move::Load(parents.0));
                }
                if let Some(u) = sibling {
                    out.push(Move::Compute(*u));
                    out.push(Move::Store(*u));
                    out.push(Move::Delete(*u));
                }
                out.push(Move::Compute(*v));
                out.push(Move::Delete(parents.0));
                out.push(Move::Delete(parents.1));
            }
        }
    }
}

struct Dp<'a> {
    graph: &'a Cdag,
    /// Sibling (pruned coefficient) of each average node, if any.
    sibling: Vec<Option<NodeId>>,
    costs: IoCosts,
    /// Keyed by [`pack_key`]`(node, budget)` — one `u128` per state.
    memo: FastHashMap<u128, Option<Rc<Plan>>>,
}

impl<'a> Dp<'a> {
    /// `PebbleTree(v, b)` — Lines 13–39 of Algorithm 1.
    fn pebble_tree(&mut self, v: NodeId, b: Weight) -> Option<Rc<Plan>> {
        let key = pack_key(v.index() as u64, b);
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        let plan = self.compute_plan(v, b);
        self.memo.insert(key, plan.clone());
        plan
    }

    fn compute_plan(&mut self, v: NodeId, b: Weight) -> Option<Rc<Plan>> {
        let g = self.graph;
        let preds = g.preds(v);
        if preds.is_empty() {
            let w = g.weight(v);
            if w > b {
                return None;
            }
            return Some(Rc::new(Plan::Leaf {
                v,
                cost: self.costs.load * w,
            }));
        }
        debug_assert_eq!(preds.len(), 2, "pruned DWT trees are binary");
        let (p1, p2) = (preds[0], preds[1]);
        let (w1, w2) = (g.weight(p1), g.weight(p2));
        let wv = g.weight(v);
        // Budget feasibility: v and both parents are simultaneously red at
        // M3(v); the sibling's compute is covered because w_u <= w_v.
        if wv
            .checked_add(w1)
            .and_then(|s| s.checked_add(w2))
            .is_none_or(|s| s > b)
        {
            return None;
        }
        let sibling = self.sibling[v.index()];

        // The four representative strategies of Eq. (4); the sibling's store
        // (w_u) is a constant across all strategies and is charged where it
        // is emitted, keeping plan costs equal to replayed schedule costs.
        let sibling_cost = sibling.map_or(0, |u| self.costs.store * g.weight(u));
        let round_trip = self.costs.load + self.costs.store;

        // (cost, first plan, second plan, (first, second) parents, spill?)
        type Candidate = (Weight, Rc<Plan>, Rc<Plan>, (NodeId, NodeId), bool);
        let mut best: Option<Candidate> = None;
        let consider = |cost: Weight,
                        first: Rc<Plan>,
                        second: Rc<Plan>,
                        par: (NodeId, NodeId),
                        spill: bool,
                        best: &mut Option<Candidate>| {
            if best.as_ref().is_none_or(|(c, ..)| cost < *c) {
                *best = Some((cost, first, second, par, spill));
            }
        };

        // Strategy (3): blue p1 — compute p1, spill it, compute p2 at full
        // budget, reload p1.  Extra cost: one store plus one load of w_p1.
        if let (Some(a), Some(c)) = (self.pebble_tree(p1, b), self.pebble_tree(p2, b)) {
            let cost = a.cost() + c.cost() + round_trip * w1 + sibling_cost;
            consider(cost, a, c, (p1, p2), true, &mut best);
        }
        // Strategy (4): red p1 — keep p1 resident while computing p2.
        if b > w1 {
            if let (Some(a), Some(c)) = (self.pebble_tree(p1, b), self.pebble_tree(p2, b - w1)) {
                let cost = a.cost() + c.cost() + sibling_cost;
                consider(cost, a, c, (p1, p2), false, &mut best);
            }
        }
        // Strategy (7): blue p2.
        if let (Some(a), Some(c)) = (self.pebble_tree(p2, b), self.pebble_tree(p1, b)) {
            let cost = a.cost() + c.cost() + round_trip * w2 + sibling_cost;
            consider(cost, a, c, (p2, p1), true, &mut best);
        }
        // Strategy (8): red p2.
        if b > w2 {
            if let (Some(a), Some(c)) = (self.pebble_tree(p2, b), self.pebble_tree(p1, b - w2)) {
                let cost = a.cost() + c.cost() + sibling_cost;
                consider(cost, a, c, (p2, p1), false, &mut best);
            }
        }

        best.map(|(cost, first, second, parents, spill_first)| {
            Rc::new(Plan::Node {
                v,
                sibling,
                first,
                second,
                parents,
                spill_first,
                cost,
            })
        })
    }
}

fn build_dp<'a>(dwt: &'a DwtGraph, costs: IoCosts) -> Dp<'a> {
    let g = dwt.cdag();
    let mut sibling = vec![None; g.len()];
    for v in g.nodes() {
        sibling[v.index()] = dwt.sibling(v);
    }
    Dp {
        graph: g,
        sibling,
        costs,
        memo: FastHashMap::default(),
    }
}

/// `PebbleDWT(G)` — generate a minimum-weight WRBPG schedule for the DWT
/// graph under `budget`, or `None` when no valid schedule exists.
///
/// The returned schedule pebbles each independent subtree sequentially
/// (Lemma 3.3's first observation), emits each pruned coefficient right
/// after its parents are resident (Lemma 3.2), and stores each tree root at
/// the end of its subtree schedule.
pub fn schedule(dwt: &DwtGraph, budget: Weight) -> Option<Schedule> {
    schedule_with_costs(dwt, budget, IoCosts::default())
}

/// As [`schedule`], but minimising the asymmetric I/O cost
/// `costs.load·(M1 bits) + costs.store·(M2 bits)` instead of raw bits.
///
/// With `store ≫ load` (non-volatile slow memory) the optimal structure
/// shifts toward keep-red strategies: spilling a subtree result becomes a
/// store *and* a reload instead of two symmetric transfers.
pub fn schedule_with_costs(dwt: &DwtGraph, budget: Weight, costs: IoCosts) -> Option<Schedule> {
    assert!(
        dwt.satisfies_pruning_condition(),
        "DWT weights must satisfy Lemma 3.2 (coefficient <= average per layer)"
    );
    with_large_stack(|| {
        let mut dp = build_dp(dwt, costs);
        let mut moves = Vec::new();
        for root in dwt.tree_roots() {
            let plan = dp.pebble_tree(root, budget)?;
            plan.emit(&mut moves);
            moves.push(Move::Store(root));
            moves.push(Move::Delete(root));
        }
        Some(Schedule::from_moves(moves))
    })
}

/// The minimum weighted schedule cost for the DWT under `budget`
/// (Lemma 3.4), or `None` when no valid schedule exists.
///
/// Equals `schedule(dwt, budget)`'s replayed cost; computed without
/// materialising moves.
pub fn min_cost(dwt: &DwtGraph, budget: Weight) -> Option<Weight> {
    min_cost_with_costs(dwt, budget, IoCosts::default())
}

/// As [`min_cost`] under asymmetric I/O costs (see
/// [`schedule_with_costs`]).
pub fn min_cost_with_costs(dwt: &DwtGraph, budget: Weight, costs: IoCosts) -> Option<Weight> {
    assert!(
        dwt.satisfies_pruning_condition(),
        "DWT weights must satisfy Lemma 3.2 (coefficient <= average per layer)"
    );
    with_large_stack(|| {
        let mut dp = build_dp(dwt, costs);
        let mut total: Weight = 0;
        for root in dwt.tree_roots() {
            let plan = dp.pebble_tree(root, budget)?;
            total += plan.cost() + costs.store * dwt.cdag().weight(root);
        }
        Some(total)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{algorithmic_lower_bound, min_feasible_budget, validate_schedule};
    use pebblyn_graphs::WeightScheme;

    fn check_all_budgets(dwt: &DwtGraph) {
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        let minb = min_feasible_budget(g);
        let maxb = g.total_weight();
        let step = g.weight_gcd().max(1);
        let mut prev_cost = None;
        let mut b = minb;
        while b <= maxb + step {
            let c = min_cost(dwt, b);
            let s = schedule(dwt, b);
            assert_eq!(c.is_some(), s.is_some());
            if let (Some(c), Some(s)) = (c, s) {
                let stats = validate_schedule(g, b, &s)
                    .unwrap_or_else(|e| panic!("invalid schedule at budget {b}: {e}"));
                assert_eq!(stats.cost, c, "DP cost must equal replayed cost at b={b}");
                assert!(c >= lb, "cost below algorithmic lower bound");
                if let Some(p) = prev_cost {
                    assert!(c <= p, "cost must be non-increasing in budget");
                }
                prev_cost = Some(c);
            }
            b += step;
        }
        // At ample budget the cost hits the algorithmic lower bound.
        assert_eq!(min_cost(dwt, maxb), Some(lb));
    }

    #[test]
    fn dwt_4_1_all_budgets() {
        let dwt = DwtGraph::new(4, 1, WeightScheme::Equal(16)).unwrap();
        check_all_budgets(&dwt);
    }

    #[test]
    fn dwt_8_3_all_budgets_equal() {
        let dwt = DwtGraph::new(8, 3, WeightScheme::Equal(16)).unwrap();
        check_all_budgets(&dwt);
    }

    #[test]
    fn dwt_8_3_all_budgets_double_accumulator() {
        let dwt = DwtGraph::new(8, 3, WeightScheme::DoubleAccumulator(16)).unwrap();
        check_all_budgets(&dwt);
    }

    #[test]
    fn dwt_16_2_all_budgets() {
        let dwt = DwtGraph::new(16, 2, WeightScheme::DoubleAccumulator(8)).unwrap();
        check_all_budgets(&dwt);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let dwt = DwtGraph::new(8, 3, WeightScheme::Equal(16)).unwrap();
        let minb = min_feasible_budget(dwt.cdag());
        assert!(min_cost(&dwt, minb - 1).is_none());
        assert!(schedule(&dwt, minb - 1).is_none());
        assert!(min_cost(&dwt, minb).is_some());
    }

    #[test]
    fn paper_scale_dwt_256_8() {
        // The headline workload: DWT(256, 8), Equal(16).
        let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        // At 10 words (160 bits) the optimum already achieves the lower
        // bound — Table 1's headline result.
        assert_eq!(min_cost(&dwt, 160), Some(lb));
        assert_ne!(min_cost(&dwt, 160 - 16), Some(lb));
        let s = schedule(&dwt, 160).unwrap();
        let stats = validate_schedule(g, 160, &s).unwrap();
        assert_eq!(stats.cost, lb);
    }

    #[test]
    fn paper_scale_dwt_256_8_double_accumulator() {
        let dwt = DwtGraph::new(256, 8, WeightScheme::DoubleAccumulator(16)).unwrap();
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        // Table 1: 18 words (288 bits) suffice in the DA configuration.
        assert_eq!(min_cost(&dwt, 288), Some(lb));
        assert_ne!(min_cost(&dwt, 288 - 16), Some(lb));
    }
}
