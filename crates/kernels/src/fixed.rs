//! Q-format fixed-point helpers — the concrete mixed-precision story behind
//! the *Double Accumulator* weight configuration.
//!
//! BCI sensor front-ends emit 16-bit samples; accumulating sums of products
//! of 16-bit values without overflow needs ~32-bit headroom, which is why
//! the paper assigns computed nodes twice the input weight.  These helpers
//! quantise `f64` signals to Q1.15, perform products/accumulations in i32,
//! and expose the bit widths the weight schemes encode.

/// Bits of a Q1.15 sample — the input node weight in the paper's configs.
pub const SAMPLE_BITS: u32 = 16;

/// Bits of an accumulator — the computed node weight in the DA config.
pub const ACCUMULATOR_BITS: u32 = 32;

const Q15_ONE: f64 = 32768.0;

/// Quantise to Q1.15 with saturation (range `[-1, 1)`).
pub fn to_q15(x: f64) -> i16 {
    let scaled = (x * Q15_ONE).round();
    scaled.clamp(i16::MIN as f64, i16::MAX as f64) as i16
}

/// Dequantise from Q1.15.
pub fn from_q15(q: i16) -> f64 {
    q as f64 / Q15_ONE
}

/// Product of two Q1.15 values, renormalised back to a Q17.15 i32
/// (shifted right by 15, as a fixed-point multiplier does).
pub fn q15_mul(a: i16, b: i16) -> i32 {
    (a as i32 * b as i32) >> 15
}

/// Accumulate Q17.15 products in i32 with saturation.  The 17 integer bits
/// give headroom for ~2^16 full-scale terms — the reason a 32-bit
/// accumulator suffices for the paper's 120-column MVM.
pub fn q15_acc(acc: i32, p: i32) -> i32 {
    acc.saturating_add(p)
}

/// Dequantise a Q17.15 accumulator.
pub fn from_q15_acc(q: i32) -> f64 {
    q as f64 / Q15_ONE
}

/// Fixed-point dot product: quantise inputs, multiply-accumulate in i32,
/// dequantise — the arithmetic an implanted MVM unit actually performs.
pub fn fixed_dot(a: &[f64], x: &[f64]) -> f64 {
    assert_eq!(a.len(), x.len());
    let acc = a.iter().zip(x).fold(0i32, |acc, (&ai, &xi)| {
        q15_acc(acc, q15_mul(to_q15(ai), to_q15(xi)))
    });
    from_q15_acc(acc)
}

/// Worst-case quantisation error of one Q1.15 sample.
pub fn q15_epsilon() -> f64 {
    0.5 / Q15_ONE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_epsilon() {
        for &x in &[0.0, 0.5, -0.25, 0.99, -1.0, 0.123456] {
            assert!((from_q15(to_q15(x)) - x).abs() <= q15_epsilon());
        }
    }

    #[test]
    fn saturation_at_bounds() {
        assert_eq!(to_q15(1.5), i16::MAX);
        assert_eq!(to_q15(-1.5), i16::MIN);
        assert_eq!(q15_acc(i32::MAX, 1), i32::MAX);
    }

    #[test]
    fn fixed_dot_tracks_float_dot() {
        let a = vec![0.5, -0.25, 0.125, 0.75];
        let x = vec![0.3, 0.6, -0.9, 0.1];
        let float: f64 = a.iter().zip(&x).map(|(p, q)| p * q).sum();
        let fixed = fixed_dot(&a, &x);
        // 4 products, each with ~2 input quantisations: loose bound.
        assert!((float - fixed).abs() < 8.0 * q15_epsilon());
    }

    #[test]
    fn accumulator_headroom_justifies_double_weight() {
        // Summing many full-scale products overflows 16 bits but not 32:
        // the structural reason for the DA weight configuration.
        let n = 120; // the paper's MVM column count
        let product = q15_mul(to_q15(0.9), to_q15(0.9));
        let mut acc = 0i32;
        for _ in 0..n {
            acc = q15_acc(acc, product);
        }
        assert!(acc > i16::MAX as i32, "sum needs more than 16 bits");
        assert!(acc < i32::MAX, "32 bits suffice");
        assert_eq!(SAMPLE_BITS * 2, ACCUMULATOR_BITS);
    }
}
