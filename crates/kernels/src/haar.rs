//! Reference Haar wavelet transform and the op-table for `DWT(n, d)` graphs.

use pebblyn_graphs::DwtGraph;
use pebblyn_machine::{Op, OpTable};

/// `1/√2` — the Haar normalisation factor.
pub const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// One level of a Haar decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct HaarLevel {
    /// The scaling function (averages) at this level.
    pub averages: Vec<f64>,
    /// The wavelet function (coefficients) at this level.
    pub coefficients: Vec<f64>,
}

/// Compute the `d`-level Haar DWT of `signal` directly (schedule-free).
///
/// `signal.len()` must be a positive multiple of `2^d`.  Level `k` (1-based)
/// of the result has `signal.len() / 2^k` averages and as many coefficients;
/// averages of level `k` are the input to level `k + 1`.
pub fn haar_dwt(signal: &[f64], d: usize) -> Vec<HaarLevel> {
    assert!(d >= 1, "at least one level");
    assert!(
        !signal.is_empty() && signal.len().is_multiple_of(1 << d),
        "signal length {} must be a positive multiple of 2^{d}",
        signal.len()
    );
    let mut levels = Vec::with_capacity(d);
    let mut current: Vec<f64> = signal.to_vec();
    for _ in 0..d {
        let mut averages = Vec::with_capacity(current.len() / 2);
        let mut coefficients = Vec::with_capacity(current.len() / 2);
        for pair in current.chunks_exact(2) {
            averages.push((pair[0] + pair[1]) * INV_SQRT2);
            coefficients.push((pair[0] - pair[1]) * INV_SQRT2);
        }
        current = averages.clone();
        levels.push(HaarLevel {
            averages,
            coefficients,
        });
    }
    levels
}

/// Inverse of [`haar_dwt`]: reconstruct the signal from the deepest
/// averages plus every level's coefficients.
pub fn haar_idwt(levels: &[HaarLevel]) -> Vec<f64> {
    let mut current = levels.last().expect("at least one level").averages.clone();
    for level in levels.iter().rev() {
        let mut up = Vec::with_capacity(current.len() * 2);
        for (a, c) in current.iter().zip(&level.coefficients) {
            up.push((a + c) * INV_SQRT2);
            up.push((a - c) * INV_SQRT2);
        }
        current = up;
    }
    current
}

/// Bind each node of a `DWT(n, d)` graph to its Haar arithmetic:
/// averages are `(p1 + p2)/√2`, coefficients `(p1 − p2)/√2`.
pub fn op_table(dwt: &DwtGraph) -> OpTable {
    let g = dwt.cdag();
    let ops = g
        .nodes()
        .map(|v| {
            if g.is_source(v) {
                Op::Input
            } else if dwt.is_average(v) {
                Op::LinCom(vec![INV_SQRT2, INV_SQRT2])
            } else {
                Op::LinCom(vec![INV_SQRT2, -INV_SQRT2])
            }
        })
        .collect();
    OpTable::new(g, ops).expect("DWT op table is well-formed")
}

/// Build the machine input environment for a DWT graph from a signal.
pub fn inputs_for(dwt: &DwtGraph, signal: &[f64]) -> Vec<f64> {
    assert_eq!(signal.len(), dwt.n(), "one sample per input node");
    let mut env = vec![0.0; dwt.cdag().len()];
    for (j, &s) in signal.iter().enumerate() {
        env[dwt.node(1, j + 1).index()] = s;
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_graphs::WeightScheme;
    use pebblyn_machine::eval_reference;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn single_level_haar() {
        let levels = haar_dwt(&[4.0, 2.0, 1.0, 3.0], 1);
        assert_eq!(levels.len(), 1);
        assert!(close(levels[0].averages[0], 6.0 * INV_SQRT2));
        assert!(close(levels[0].coefficients[0], 2.0 * INV_SQRT2));
        assert!(close(levels[0].averages[1], 4.0 * INV_SQRT2));
        assert!(close(levels[0].coefficients[1], -2.0 * INV_SQRT2));
    }

    #[test]
    fn multi_level_recursion() {
        let signal: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let levels = haar_dwt(&signal, 3);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].averages.len(), 4);
        assert_eq!(levels[1].averages.len(), 2);
        assert_eq!(levels[2].averages.len(), 1);
        // The deepest average is the scaled signal mean:
        // each level multiplies the sum by 1/√2 while halving the count.
        let sum: f64 = signal.iter().sum();
        assert!(close(levels[2].averages[0], sum * INV_SQRT2.powi(3)));
    }

    #[test]
    fn idwt_inverts_dwt() {
        let signal = vec![3.5, -1.0, 0.25, 7.0, 2.0, 2.0, -4.5, 0.0];
        let levels = haar_dwt(&signal, 3);
        let back = haar_idwt(&levels);
        for (a, b) in signal.iter().zip(&back) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 2^2")]
    fn rejects_bad_length() {
        haar_dwt(&[1.0, 2.0], 2);
    }

    #[test]
    fn graph_semantics_match_reference() {
        // Evaluate the DWT graph via the op-table and compare every level
        // against the direct transform.
        let dwt = DwtGraph::new(8, 3, WeightScheme::Equal(16)).unwrap();
        let signal = vec![1.0, 4.0, -2.0, 0.5, 3.0, 3.0, -1.0, 2.0];
        let env = inputs_for(&dwt, &signal);
        let vals = eval_reference(dwt.cdag(), &op_table(&dwt), &env);
        let levels = haar_dwt(&signal, 3);
        for (k, level) in levels.iter().enumerate() {
            // Level k (0-based) lives in graph layer k + 2.
            let layer = k + 2;
            for (t, (&a, &c)) in level.averages.iter().zip(&level.coefficients).enumerate() {
                let av = vals[dwt.node(layer, 2 * t + 1).index()];
                let cv = vals[dwt.node(layer, 2 * t + 2).index()];
                assert!(close(av, a), "avg level {k} idx {t}: {av} vs {a}");
                assert!(close(cv, c), "coef level {k} idx {t}: {cv} vs {c}");
            }
        }
    }
}
