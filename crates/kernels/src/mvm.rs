//! Reference matrix-vector multiplication and the op-table for
//! `MVM(m, n)` graphs.

use pebblyn_graphs::MvmGraph;
use pebblyn_machine::{Op, OpTable};

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `data[r * cols + c]`.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Build from row-major data.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data size");
        Matrix { rows, cols, data }
    }

    /// Element `a_{r,c}` (0-based).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }
}

/// Direct `y = A·x` (schedule-free reference).
pub fn mvm_ref(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols, "vector length matches columns");
    (0..a.rows)
        .map(|r| (0..a.cols).map(|c| a.at(r, c) * x[c]).sum())
        .collect()
}

/// Bind each node of an `MVM(m, n)` graph to its arithmetic: products are
/// `x_c · a_{r,c}`, accumulations are sums.
pub fn op_table(mvm: &MvmGraph) -> OpTable {
    let g = mvm.cdag();
    let ops = g
        .nodes()
        .map(|v| {
            if g.is_source(v) {
                Op::Input
            } else if g.in_degree(v) == 2 && !g.is_source(g.preds(v)[0]) {
                // Accumulator: sums its two operands.
                Op::LinCom(vec![1.0, 1.0])
            } else if g.preds(v).iter().all(|&p| g.is_source(p)) {
                Op::Prod
            } else {
                Op::LinCom(vec![1.0, 1.0])
            }
        })
        .collect();
    OpTable::new(g, ops).expect("MVM op table is well-formed")
}

/// Build the machine input environment from a matrix and vector.
pub fn inputs_for(mvm: &MvmGraph, a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows, mvm.m());
    assert_eq!(a.cols, mvm.n());
    assert_eq!(x.len(), mvm.n());
    let mut env = vec![0.0; mvm.cdag().len()];
    for c in 1..=mvm.n() {
        env[mvm.vector(c).index()] = x[c - 1];
        for r in 1..=mvm.m() {
            env[mvm.matrix(r, c).index()] = a.at(r - 1, c - 1);
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_graphs::WeightScheme;
    use pebblyn_machine::eval_reference;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn reference_product() {
        let a = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = mvm_ref(&a, &[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn graph_semantics_match_reference() {
        let mvm = MvmGraph::new(3, 4, WeightScheme::DoubleAccumulator(16)).unwrap();
        let a = Matrix::new(
            3,
            4,
            vec![
                0.5, -1.0, 2.0, 0.0, //
                1.5, 1.5, -0.5, 3.0, //
                -2.0, 0.25, 1.0, 1.0,
            ],
        );
        let x = vec![2.0, -1.0, 0.5, 4.0];
        let env = inputs_for(&mvm, &a, &x);
        let vals = eval_reference(mvm.cdag(), &op_table(&mvm), &env);
        let expected = mvm_ref(&a, &x);
        for (r, &y) in expected.iter().enumerate() {
            let got = vals[mvm.output(r + 1).index()];
            assert!(close(got, y), "row {r}: {got} vs {y}");
        }
    }

    #[test]
    fn single_column_graph_semantics() {
        let mvm = MvmGraph::new(2, 1, WeightScheme::Equal(16)).unwrap();
        let a = Matrix::new(2, 1, vec![3.0, -2.0]);
        let x = vec![5.0];
        let env = inputs_for(&mvm, &a, &x);
        let vals = eval_reference(mvm.cdag(), &op_table(&mvm), &env);
        assert!(close(vals[mvm.output(1).index()], 15.0));
        assert!(close(vals[mvm.output(2).index()], -10.0));
    }

    #[test]
    #[should_panic(expected = "row-major data size")]
    fn matrix_size_checked() {
        Matrix::new(2, 2, vec![1.0]);
    }
}
