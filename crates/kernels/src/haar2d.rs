//! Reference separable 2-D Haar transform and the op-table for
//! [`Dwt2dGraph`].

use crate::haar::INV_SQRT2;
use pebblyn_graphs::dwt2d::Dwt2dGraph;
use pebblyn_machine::{Op, OpTable};

/// One level of a 2-D decomposition: the four subband matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Subbands {
    /// Average/average (input to the next level).
    pub ll: Vec<Vec<f64>>,
    /// Average/detail.
    pub lh: Vec<Vec<f64>>,
    /// Detail/average.
    pub hl: Vec<Vec<f64>>,
    /// Detail/detail.
    pub hh: Vec<Vec<f64>>,
}

/// Direct (schedule-free) separable 2-D Haar DWT: `levels` recursions of a
/// row pass followed by a column pass on the LL quadrant.
///
/// `image` must be square with side a positive multiple of `2^levels`.
pub fn haar_dwt2d(image: &[Vec<f64>], levels: usize) -> Vec<Subbands> {
    let n = image.len();
    assert!(levels >= 1);
    assert!(
        n > 0 && image.iter().all(|row| row.len() == n),
        "square image"
    );
    assert_eq!(n % (1 << levels), 0, "side must divide by 2^levels");

    let mut out = Vec::with_capacity(levels);
    let mut grid: Vec<Vec<f64>> = image.to_vec();
    for _ in 0..levels {
        let m = grid.len();
        let half = m / 2;
        // Row pass.
        let mut row_l = vec![vec![0.0; half]; m];
        let mut row_h = vec![vec![0.0; half]; m];
        for r in 0..m {
            for t in 0..half {
                row_l[r][t] = (grid[r][2 * t] + grid[r][2 * t + 1]) * INV_SQRT2;
                row_h[r][t] = (grid[r][2 * t] - grid[r][2 * t + 1]) * INV_SQRT2;
            }
        }
        // Column pass.
        let col = |src: &Vec<Vec<f64>>| {
            let mut avg = vec![vec![0.0; half]; half];
            let mut det = vec![vec![0.0; half]; half];
            for t in 0..half {
                for c in 0..half {
                    avg[t][c] = (src[2 * t][c] + src[2 * t + 1][c]) * INV_SQRT2;
                    det[t][c] = (src[2 * t][c] - src[2 * t + 1][c]) * INV_SQRT2;
                }
            }
            (avg, det)
        };
        let (ll, lh) = col(&row_l);
        let (hl, hh) = col(&row_h);
        grid = ll.clone();
        out.push(Subbands { ll, lh, hl, hh });
    }
    out
}

/// Bind each node of a 2-D DWT graph to its arithmetic.  Node names encode
/// the role: averages sum, details difference, both scaled by `1/√2`.
pub fn op_table(g: &Dwt2dGraph) -> OpTable {
    let cdag = g.cdag();
    let ops = cdag
        .nodes()
        .map(|v| {
            if cdag.is_source(v) {
                Op::Input
            } else {
                let name = cdag.name(v);
                // Row detail nodes are `rH…`, column details `c?d…`.
                let is_detail = name.starts_with("rH")
                    || (name.starts_with('c') && name.as_bytes().get(2) == Some(&b'd'));
                if is_detail {
                    Op::LinCom(vec![INV_SQRT2, -INV_SQRT2])
                } else {
                    Op::LinCom(vec![INV_SQRT2, INV_SQRT2])
                }
            }
        })
        .collect();
    OpTable::new(cdag, ops).expect("2-D DWT op table is well-formed")
}

/// Build the machine input environment from an image.
pub fn inputs_for(g: &Dwt2dGraph, image: &[Vec<f64>]) -> Vec<f64> {
    assert_eq!(image.len(), g.n());
    let mut env = vec![0.0; g.cdag().len()];
    for (r, row) in image.iter().enumerate() {
        assert_eq!(row.len(), g.n());
        for (c, &px) in row.iter().enumerate() {
            env[g.pixel(r, c).index()] = px;
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_graphs::WeightScheme;
    use pebblyn_machine::eval_reference;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn test_image(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| ((r * 31 + c * 7) % 13) as f64 - 6.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn constant_image_concentrates_in_ll() {
        let image = vec![vec![2.0; 4]; 4];
        let bands = haar_dwt2d(&image, 1);
        // One 2-D Haar level scales a constant by (√2·√2)/2... each pass
        // multiplies pairs: (2+2)/√2 = 2√2, then (2√2+2√2)/√2 = 4.
        for row in &bands[0].ll {
            for &v in row {
                assert!(close(v, 4.0));
            }
        }
        for q in [&bands[0].lh, &bands[0].hl, &bands[0].hh] {
            for row in q.iter() {
                for &v in row {
                    assert!(close(v, 0.0));
                }
            }
        }
    }

    #[test]
    fn energy_is_preserved() {
        // The Haar transform is orthonormal: total energy is invariant.
        let image = test_image(8);
        let bands = haar_dwt2d(&image, 3);
        let image_energy: f64 = image.iter().flatten().map(|v| v * v).sum();
        let mut band_energy: f64 = bands
            .iter()
            .flat_map(|b| [&b.lh, &b.hl, &b.hh])
            .flat_map(|q| q.iter().flatten())
            .map(|v| v * v)
            .sum();
        band_energy += bands
            .last()
            .unwrap()
            .ll
            .iter()
            .flatten()
            .map(|v| v * v)
            .sum::<f64>();
        assert!(close(image_energy, band_energy));
    }

    #[test]
    fn graph_semantics_match_reference() {
        let g = Dwt2dGraph::new(8, 2, WeightScheme::Equal(16)).unwrap();
        let image = test_image(8);
        let env = inputs_for(&g, &image);
        let vals = eval_reference(g.cdag(), &op_table(&g), &env);
        let bands = haar_dwt2d(&image, 2);
        for (lvl, band) in bands.iter().enumerate() {
            let q = g.level(lvl + 1);
            let half = band.ll.len();
            for t in 0..half {
                for c in 0..half {
                    assert!(close(vals[q.ll[t][c].index()], band.ll[t][c]));
                    assert!(close(vals[q.lh[t][c].index()], band.lh[t][c]));
                    assert!(close(vals[q.hl[t][c].index()], band.hl[t][c]));
                    assert!(close(vals[q.hh[t][c].index()], band.hh[t][c]));
                }
            }
        }
    }
}
