//! Detection features computed on DWT output — the downstream consumers
//! that motivate the paper's kernels (seizure detection, movement intent).

use crate::haar::HaarLevel;

/// Line length: `Σ |x[i+1] − x[i]|`, the classic low-cost seizure feature.
pub fn line_length(signal: &[f64]) -> f64 {
    signal.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
}

/// Energy of one wavelet band (sum of squared coefficients).
pub fn band_energy(coefficients: &[f64]) -> f64 {
    coefficients.iter().map(|c| c * c).sum()
}

/// Per-level wavelet energies of a Haar decomposition, level 1 first.
pub fn wavelet_energies(levels: &[HaarLevel]) -> Vec<f64> {
    levels
        .iter()
        .map(|l| band_energy(&l.coefficients))
        .collect()
}

/// A simple threshold detector over per-window feature values: fires when
/// the feature exceeds `threshold_factor` times the running median of the
/// previous windows (bootstrap: the first window never fires).
#[derive(Debug, Clone)]
pub struct ThresholdDetector {
    history: Vec<f64>,
    threshold_factor: f64,
}

impl ThresholdDetector {
    /// Create a detector that fires at `threshold_factor` × running median.
    pub fn new(threshold_factor: f64) -> Self {
        assert!(threshold_factor > 0.0);
        ThresholdDetector {
            history: Vec::new(),
            threshold_factor,
        }
    }

    /// Feed one window's feature value; returns `true` when it fires.
    pub fn step(&mut self, feature: f64) -> bool {
        let fired = match self.median() {
            Some(med) if med > 0.0 => feature > self.threshold_factor * med,
            _ => false,
        };
        self.history.push(feature);
        fired
    }

    fn median(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        let mut sorted = self.history.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("features are finite"));
        Some(sorted[sorted.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::haar_dwt;
    use crate::signal::{generate_channel, SeizureEvent, SignalConfig};

    #[test]
    fn line_length_basics() {
        assert_eq!(line_length(&[0.0, 1.0, -1.0]), 3.0);
        assert_eq!(line_length(&[5.0]), 0.0);
        assert_eq!(line_length(&[]), 0.0);
    }

    #[test]
    fn band_energy_basics() {
        assert_eq!(band_energy(&[3.0, 4.0]), 25.0);
        assert_eq!(band_energy(&[]), 0.0);
    }

    #[test]
    fn detector_fires_on_outlier() {
        let mut d = ThresholdDetector::new(3.0);
        assert!(!d.step(1.0)); // bootstrap
        assert!(!d.step(1.2));
        assert!(!d.step(0.9));
        assert!(d.step(10.0));
        assert!(!d.step(1.0));
    }

    #[test]
    fn seizure_energy_visible_in_wavelet_bands() {
        // End-to-end: generate an ictal window and a background window, DWT
        // both, and check that low-frequency band energy separates them.
        let quiet = SignalConfig {
            samples: 256,
            seed: 5,
            ..Default::default()
        };
        let ictal = SignalConfig {
            events: vec![SeizureEvent {
                start: 0,
                len: 256,
                amplitude: 10.0,
                freq_hz: 5.0,
            }],
            ..quiet.clone()
        };
        let eq = wavelet_energies(&haar_dwt(&generate_channel(&quiet), 8));
        let ei = wavelet_energies(&haar_dwt(&generate_channel(&ictal), 8));
        let deep_quiet: f64 = eq[4..].iter().sum();
        let deep_ictal: f64 = ei[4..].iter().sum();
        assert!(
            deep_ictal > 5.0 * deep_quiet,
            "ictal deep-band energy {deep_ictal} vs quiet {deep_quiet}"
        );
    }
}
