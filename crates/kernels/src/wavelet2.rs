//! Arbitrary size-two wavelets on the DWT dataflow.
//!
//! Definition 3.1's dataflow "is applicable to any wavelet of size two and
//! any normalization factor": the graph shape is fixed, only the low- and
//! high-pass filter taps change.  This module parameterises the transform
//! over those taps, covering the orthonormal Haar (`1/√2`), the
//! integer-friendly unnormalised Haar (sum/difference), lazy-wavelet
//! splits, and any other two-tap pair — all executing on the *same* WRBPG
//! schedules, since schedules depend only on the graph and weights.

use pebblyn_graphs::DwtGraph;
use pebblyn_machine::{Op, OpTable};

/// A two-tap wavelet: low-pass taps produce the "average" stream that
/// recursion consumes, high-pass taps produce the output coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wavelet2 {
    /// Low-pass filter `[h0, h1]`.
    pub lo: [f64; 2],
    /// High-pass filter `[g0, g1]`.
    pub hi: [f64; 2],
}

impl Wavelet2 {
    /// The orthonormal Haar wavelet (`1/√2` normalisation) — the paper's
    /// example filters.
    pub fn haar() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Wavelet2 {
            lo: [s, s],
            hi: [s, -s],
        }
    }

    /// Unnormalised Haar: plain sum and difference.  Integer-exact, the
    /// usual choice in fixed-point implants (the `1/2` renormalisation is
    /// folded into downstream thresholds).
    pub fn unnormalized_haar() -> Self {
        Wavelet2 {
            lo: [1.0, 1.0],
            hi: [1.0, -1.0],
        }
    }

    /// Haar with normalisation factor 2 (averages are true means).
    pub fn mean_haar() -> Self {
        Wavelet2 {
            lo: [0.5, 0.5],
            hi: [0.5, -0.5],
        }
    }

    /// `true` when the analysis filters are orthonormal (energy
    /// preserving): rows of the 2×2 filter matrix orthonormal.
    pub fn is_orthonormal(&self) -> bool {
        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        let [h0, h1] = self.lo;
        let [g0, g1] = self.hi;
        close(h0 * h0 + h1 * h1, 1.0)
            && close(g0 * g0 + g1 * g1, 1.0)
            && close(h0 * g0 + h1 * g1, 0.0)
    }

    /// One analysis level: pairs of `input` → (averages, coefficients).
    pub fn analyze(&self, input: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert!(input.len() >= 2 && input.len().is_multiple_of(2));
        let mut avg = Vec::with_capacity(input.len() / 2);
        let mut coeff = Vec::with_capacity(input.len() / 2);
        for pair in input.chunks_exact(2) {
            avg.push(self.lo[0] * pair[0] + self.lo[1] * pair[1]);
            coeff.push(self.hi[0] * pair[0] + self.hi[1] * pair[1]);
        }
        (avg, coeff)
    }

    /// Full `d`-level transform: level-k averages feed level k+1.
    pub fn analyze_levels(&self, signal: &[f64], d: usize) -> Vec<crate::haar::HaarLevel> {
        assert!(d >= 1 && signal.len().is_multiple_of(1 << d) && !signal.is_empty());
        let mut out = Vec::with_capacity(d);
        let mut current = signal.to_vec();
        for _ in 0..d {
            let (avg, coeff) = self.analyze(&current);
            current = avg.clone();
            out.push(crate::haar::HaarLevel {
                averages: avg,
                coefficients: coeff,
            });
        }
        out
    }

    /// Bind a DWT graph's nodes to this wavelet's arithmetic.
    pub fn op_table(&self, dwt: &DwtGraph) -> OpTable {
        let g = dwt.cdag();
        let ops = g
            .nodes()
            .map(|v| {
                if g.is_source(v) {
                    Op::Input
                } else if dwt.is_average(v) {
                    Op::LinCom(self.lo.to_vec())
                } else {
                    Op::LinCom(self.hi.to_vec())
                }
            })
            .collect();
        OpTable::new(g, ops).expect("wavelet op table is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar;
    use pebblyn_core::validate_schedule;
    use pebblyn_graphs::WeightScheme;
    use pebblyn_machine::{eval_reference, Machine};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn haar_instance_matches_haar_module() {
        let w = Wavelet2::haar();
        assert!(w.is_orthonormal());
        let signal = vec![3.0, -1.0, 2.0, 6.0, 0.5, 0.5, -2.0, 4.0];
        let via_wavelet = w.analyze_levels(&signal, 3);
        let via_haar = haar::haar_dwt(&signal, 3);
        for (a, b) in via_wavelet.iter().zip(&via_haar) {
            for (x, y) in a.averages.iter().zip(&b.averages) {
                assert!(close(*x, *y));
            }
            for (x, y) in a.coefficients.iter().zip(&b.coefficients) {
                assert!(close(*x, *y));
            }
        }
    }

    #[test]
    fn unnormalized_haar_is_integer_exact() {
        let w = Wavelet2::unnormalized_haar();
        assert!(!w.is_orthonormal());
        let (avg, coeff) = w.analyze(&[7.0, 3.0, -2.0, 5.0]);
        assert_eq!(avg, vec![10.0, 3.0]);
        assert_eq!(coeff, vec![4.0, -7.0]);
    }

    #[test]
    fn mean_haar_averages_are_means() {
        let w = Wavelet2::mean_haar();
        let (avg, _) = w.analyze(&[2.0, 4.0]);
        assert_eq!(avg, vec![3.0]);
    }

    /// The same optimal WRBPG schedule drives any two-tap wavelet — only
    /// the op table changes.
    #[test]
    fn one_schedule_serves_every_wavelet() {
        let dwt = DwtGraph::new(8, 3, WeightScheme::Equal(16)).unwrap();
        let g = dwt.cdag();
        let budget = 5 * 16;
        let schedule = pebblyn_schedulers::dwt_opt::schedule(&dwt, budget).unwrap();
        validate_schedule(g, budget, &schedule).unwrap();
        let signal = vec![1.0, 5.0, -3.0, 2.0, 2.0, 2.0, 8.0, -1.0];
        let env = haar::inputs_for(&dwt, &signal);
        for w in [
            Wavelet2::haar(),
            Wavelet2::unnormalized_haar(),
            Wavelet2::mean_haar(),
            Wavelet2 {
                lo: [0.8, 0.6],
                hi: [0.6, -0.8],
            },
        ] {
            let ops = w.op_table(&dwt);
            let report = Machine::new(g, &ops, budget)
                .run(&schedule, &env)
                .expect("wavelet executes on the shared schedule");
            let reference = eval_reference(g, &ops, &env);
            let root = dwt.tree_roots()[0];
            assert!(close(report.outputs[&root], reference[root.index()]));
            // Spot-check a coefficient against the direct transform.
            let levels = w.analyze_levels(&signal, 3);
            let c_node = dwt.node(2, 2);
            assert!(close(report.outputs[&c_node], levels[0].coefficients[0]));
        }
    }

    #[test]
    fn rotation_wavelet_is_orthonormal() {
        // Any rotation matrix rows form an orthonormal 2-tap pair.
        let (s, c) = (0.6, 0.8);
        let w = Wavelet2 {
            lo: [c, s],
            hi: [s, -c],
        };
        assert!(w.is_orthonormal());
        // Energy preservation on one level.
        let input = [1.5, -2.5, 4.0, 0.25];
        let (avg, coeff) = w.analyze(&input);
        let before: f64 = input.iter().map(|x| x * x).sum();
        let after: f64 = avg.iter().chain(&coeff).map(|x| x * x).sum();
        assert!(close(before, after));
    }
}
