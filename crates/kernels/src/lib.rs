//! # pebblyn-kernels — the numbers behind the graphs
//!
//! The WRBPG models *where* values live; this crate supplies the values:
//!
//! * [`haar`] — reference multi-level Haar DWT (averages + coefficients)
//!   and the [`OpTable`](pebblyn_machine::OpTable) binding a
//!   [`DwtGraph`](pebblyn_graphs::DwtGraph)'s nodes to the transform's
//!   arithmetic, so schedules can be executed and checked end to end,
//! * [`mvm`] — reference matrix-vector product and the op-table for
//!   [`MvmGraph`](pebblyn_graphs::MvmGraph),
//! * [`signal`] — synthetic neural recordings (1/f-flavoured background,
//!   oscillatory bursts, seizure-like high-amplitude events) standing in
//!   for the implanted-BCI electrode data the paper's workloads process,
//! * [`features`] — the simple detection features BCI pipelines compute on
//!   DWT output (wavelet-band energy, line length),
//! * [`fixed`] — Q-format fixed-point helpers that make the *Double
//!   Accumulator* weight configuration concrete (16-bit samples, 32-bit
//!   accumulators).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod fixed;
pub mod haar;
pub mod haar2d;
pub mod mvm;
pub mod signal;
pub mod wavelet2;
