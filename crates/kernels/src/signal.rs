//! Synthetic neural signal generation.
//!
//! The paper's workloads process data from a 96-electrode Utah array
//! implanted near the brain (20–30 kHz sampling).  Real recordings are not
//! redistributable, so this module generates signals with the same gross
//! statistics BCI pipelines care about: band-limited oscillatory background
//! with 1/f-flavoured spectral decay, white sensor noise, and optional
//! seizure-like events (large-amplitude low-frequency bursts) that the DWT
//! feature pipeline in the examples must detect.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of a seizure-like event injected into the background.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeizureEvent {
    /// First sample of the event.
    pub start: usize,
    /// Event length in samples.
    pub len: usize,
    /// Amplitude multiple of the background RMS.
    pub amplitude: f64,
    /// Dominant frequency of the event in Hz (ictal rhythms are ~3–8 Hz).
    pub freq_hz: f64,
}

/// Synthetic recording configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalConfig {
    /// Samples per channel.
    pub samples: usize,
    /// Sampling rate in Hz.
    pub fs_hz: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Number of background oscillators per channel.
    pub oscillators: usize,
    /// White noise standard deviation relative to background RMS.
    pub noise: f64,
    /// Optional seizure events.
    pub events: Vec<SeizureEvent>,
}

impl Default for SignalConfig {
    fn default() -> Self {
        SignalConfig {
            samples: 1024,
            fs_hz: 1000.0,
            seed: 0xB1C1,
            oscillators: 8,
            noise: 0.3,
            events: Vec::new(),
        }
    }
}

/// Generate one channel.
///
/// The background is a sum of `oscillators` sinusoids with random phases
/// and frequencies log-spaced in 1–100 Hz, amplitudes decaying as `1/f`
/// (the canonical neural power spectrum), plus white noise.  Events add a
/// windowed high-amplitude rhythm on top.
pub fn generate_channel(cfg: &SignalConfig) -> Vec<f64> {
    generate_multichannel(cfg, 1).pop().expect("one channel")
}

/// Generate `channels` channels with independent phases/noise but shared
/// event timing — the spatially correlated structure of an electrode array
/// during an ictal event.
pub fn generate_multichannel(cfg: &SignalConfig, channels: usize) -> Vec<Vec<f64>> {
    assert!(cfg.samples > 0 && channels > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let dt = 1.0 / cfg.fs_hz;
    (0..channels)
        .map(|_| {
            let oscs: Vec<(f64, f64, f64)> = (0..cfg.oscillators)
                .map(|k| {
                    let f = 1.0
                        * (100.0f64 / 1.0).powf(k as f64 / cfg.oscillators.max(2) as f64)
                        * rng.gen_range(0.8f64..1.25);
                    let amp = 1.0 / f.max(1.0);
                    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                    (f, amp, phase)
                })
                .collect();
            let rms: f64 = (oscs.iter().map(|(_, a, _)| a * a / 2.0).sum::<f64>()).sqrt();
            (0..cfg.samples)
                .map(|i| {
                    let t = i as f64 * dt;
                    let mut s: f64 = oscs
                        .iter()
                        .map(|(f, a, p)| a * (std::f64::consts::TAU * f * t + p).sin())
                        .sum();
                    s += cfg.noise * rms * sample_gaussian(&mut rng);
                    for ev in &cfg.events {
                        if i >= ev.start && i < ev.start + ev.len {
                            // Hann-windowed ictal rhythm.
                            let u = (i - ev.start) as f64 / ev.len as f64;
                            let window = 0.5 * (1.0 - (std::f64::consts::TAU * u).cos());
                            s += ev.amplitude
                                * rms
                                * window
                                * (std::f64::consts::TAU * ev.freq_hz * t).sin();
                        }
                    }
                    s
                })
                .collect()
        })
        .collect()
}

/// Standard normal sample via Box–Muller.
fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Root-mean-square of a signal.
pub fn rms(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    (signal.iter().map(|s| s * s).sum::<f64>() / signal.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SignalConfig::default();
        assert_eq!(generate_channel(&cfg), generate_channel(&cfg));
        let other = SignalConfig {
            seed: 7,
            ..cfg.clone()
        };
        assert_ne!(generate_channel(&cfg), generate_channel(&other));
    }

    #[test]
    fn seizure_raises_local_amplitude() {
        let base = SignalConfig {
            samples: 2048,
            ..Default::default()
        };
        let with_event = SignalConfig {
            events: vec![SeizureEvent {
                start: 1024,
                len: 512,
                amplitude: 8.0,
                freq_hz: 5.0,
            }],
            ..base.clone()
        };
        let s = generate_channel(&with_event);
        let pre = rms(&s[..1024]);
        let ictal = rms(&s[1024..1536]);
        assert!(
            ictal > 2.0 * pre,
            "ictal RMS {ictal} should dwarf background {pre}"
        );
    }

    #[test]
    fn multichannel_shares_event_timing() {
        let cfg = SignalConfig {
            samples: 1024,
            events: vec![SeizureEvent {
                start: 512,
                len: 256,
                amplitude: 10.0,
                freq_hz: 4.0,
            }],
            ..Default::default()
        };
        let chans = generate_multichannel(&cfg, 4);
        assert_eq!(chans.len(), 4);
        for ch in &chans {
            assert!(rms(&ch[512..768]) > rms(&ch[..512]));
        }
        // Channels are not identical (independent phases).
        assert_ne!(chans[0], chans[1]);
    }

    #[test]
    fn rms_of_empty_is_zero() {
        assert_eq!(rms(&[]), 0.0);
        assert!((rms(&[3.0, -3.0]) - 3.0).abs() < 1e-12);
    }
}
