//! Property tests over the numeric kernels.

use pebblyn_kernels::wavelet2::Wavelet2;
use pebblyn_kernels::{fixed, haar};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The inverse Haar transform reconstructs any signal exactly (up to
    /// floating-point noise) at every admissible depth.
    #[test]
    fn haar_round_trips(signal in proptest::collection::vec(-100.0f64..100.0, 16)) {
        for d in 1..=4usize {
            let levels = haar::haar_dwt(&signal, d);
            let back = haar::haar_idwt(&levels);
            for (a, b) in signal.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-9, "d={d}: {a} vs {b}");
            }
        }
    }

    /// Orthonormal Haar preserves energy at every level.
    #[test]
    fn haar_preserves_energy(signal in proptest::collection::vec(-10.0f64..10.0, 32)) {
        let levels = haar::haar_dwt(&signal, 5);
        let mut e: f64 = levels.iter().map(|l| l.coefficients.iter().map(|c| c * c).sum::<f64>()).sum();
        e += levels.last().unwrap().averages.iter().map(|a| a * a).sum::<f64>();
        let input_e: f64 = signal.iter().map(|s| s * s).sum();
        prop_assert!((e - input_e).abs() < 1e-6 * input_e.max(1.0));
    }

    /// Any two-tap wavelet built from a rotation is orthonormal and its
    /// analysis matches a hand-rolled matrix product.
    #[test]
    fn rotation_wavelets_are_orthonormal(theta in 0.0f64..std::f64::consts::TAU, x0 in -5.0f64..5.0, x1 in -5.0f64..5.0) {
        let (s, c) = theta.sin_cos();
        let w = Wavelet2 { lo: [c, s], hi: [s, -c] };
        prop_assert!(w.is_orthonormal());
        let (avg, coeff) = w.analyze(&[x0, x1]);
        prop_assert!((avg[0] - (c * x0 + s * x1)).abs() < 1e-12);
        prop_assert!((coeff[0] - (s * x0 - c * x1)).abs() < 1e-12);
    }

    /// Q1.15 round trips stay within one quantisation step, and the fixed
    /// dot product tracks the float dot product within the accumulated
    /// quantisation bound.
    #[test]
    fn fixed_point_error_bounds(values in proptest::collection::vec(-0.999f64..0.999, 1..64)) {
        for &v in &values {
            prop_assert!((fixed::from_q15(fixed::to_q15(v)) - v).abs() <= fixed::q15_epsilon());
        }
        let ones = vec![0.5; values.len()];
        let float: f64 = values.iter().map(|v| v * 0.5).sum();
        let fixed_result = fixed::fixed_dot(&values, &ones);
        // Each term suffers <= ~3 quantisation steps (two inputs + product
        // truncation); the sum accumulates linearly.
        let bound = 3.0 * values.len() as f64 * fixed::q15_epsilon();
        prop_assert!((float - fixed_result).abs() <= bound, "{float} vs {fixed_result}");
    }
}
