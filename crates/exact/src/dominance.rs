//! Mask-keyed dominance store for the A\* search.
//!
//! State `s₁ = (red₁, blue₁)` *dominates* `s₂ = (red₂, blue₂)` reached at
//! cost `g₂` when `red₁ ⊇ red₂`, `blue₁ ⊇ blue₂`, and `g₁ < g₂`: deletes
//! are free, so from `s₁` the extra red pebbles can be dropped at zero cost
//! and any completion of `s₂` mirrored move-for-move (blue pebbles are never
//! deleted, and the goal only asks for blue superset of the sinks), giving a
//! completion from `s₁` of strictly smaller total cost.  A dominated state
//! can therefore be discarded without losing optimality, and because the
//! recorded cost is *strictly* smaller, the discard argument terminates: a
//! pruned completion is replaced by one of strictly smaller total cost, and
//! costs are non-negative integers.
//!
//! The strictness matters.  With `g₁ ≤ g₂` the relation would prune every
//! delete successor against its own parent (red superset at equal cost) —
//! exactly the states that budget-forced evictions must pass through — and
//! the mirror argument would chase its own tail.  Equal-cost red-subset
//! states are left to the distance map and the tightened successor
//! relation instead; what strict dominance removes is every detour that
//! *paid* I/O for pebbles a cheaper recorded state already holds.
//!
//! The store buckets recorded `(red, g)` pairs by their exact blue mask
//! (hashed with [`pebblyn_core::fasthash`] via [`FastHashMap`]).  Restricting
//! lookups to the equal-blue bucket keeps probes O(bucket) while giving up
//! almost nothing: a strict blue-superset at `≤ g` requires having paid for
//! strictly more stores in fewer or equally many I/O moves, which the cost
//! model prices out except in degenerate zero-scale configurations.  Each
//! bucket is maintained as a Pareto antichain: recording a pair evicts every
//! pair it dominates, so buckets stay small.
//!
//! The store is generic over the state's [`StateMask`] width; the subset
//! probe is [`StateMask::contains_all`], which for `u64` lowers to the
//! single `and`+`cmp` of the pre-refactor store.

use pebblyn_core::{FastHashMap, StateMask, Weight};

/// Recorded expansion frontiers, bucketed by blue mask.
#[derive(Debug)]
pub(crate) struct DominanceStore<M: StateMask> {
    buckets: FastHashMap<M, Vec<(M, Weight)>>,
}

impl<M: StateMask> Default for DominanceStore<M> {
    fn default() -> Self {
        DominanceStore {
            buckets: FastHashMap::default(),
        }
    }
}

impl<M: StateMask> DominanceStore<M> {
    /// `true` when a recorded state with the same blue mask, a red superset,
    /// and *strictly* smaller cost exists.  (The equal-state case is already
    /// handled by the search's distance map, which never re-queues a state
    /// at a non-improving cost; equal-cost subsets must survive, see the
    /// module docs.)
    pub(crate) fn dominated(&self, red: M, blue: M, g: Weight) -> bool {
        self.buckets
            .get(&blue)
            .is_some_and(|b| b.iter().any(|&(r, rg)| r.contains_all(red) && rg < g))
    }

    /// Record `(red, blue)` reached at cost `g`, evicting every recorded
    /// pair whose pruning power the new one subsumes (`red ⊇ r`, `g ≤ rg`:
    /// anything the old pair strictly dominates, the new one does too), so
    /// the bucket stays a Pareto antichain.
    pub(crate) fn record(&mut self, red: M, blue: M, g: Weight) {
        let bucket = self.buckets.entry(blue).or_default();
        bucket.retain(|&(r, rg)| !(red.contains_all(r) && g <= rg));
        bucket.push((red, g));
    }

    /// Total recorded pairs across all buckets (for statistics).
    pub(crate) fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::Words;

    #[test]
    fn superset_at_strictly_lower_cost_dominates() {
        let mut d = DominanceStore::<u64>::default();
        d.record(0b111, 0b1, 10);
        assert!(d.dominated(0b011, 0b1, 11), "red subset, higher cost");
        assert!(d.dominated(0b111, 0b1, 12), "equal red, higher cost");
        assert!(
            !d.dominated(0b011, 0b1, 10),
            "equal cost survives: free-delete successors must not be pruned by their parent"
        );
        assert!(!d.dominated(0b011, 0b1, 9), "cheaper candidate survives");
        assert!(!d.dominated(0b1011, 0b1, 11), "incomparable red survives");
        assert!(!d.dominated(0b011, 0b11, 11), "different blue bucket");
    }

    #[test]
    fn record_keeps_buckets_as_antichains() {
        let mut d = DominanceStore::<u64>::default();
        d.record(0b011, 0, 10);
        d.record(0b001, 0, 12); // dominated by the first, still recorded…
        assert_eq!(d.len(), 2);
        d.record(0b111, 0, 9); // …until a dominator evicts both
        assert_eq!(d.len(), 1);
        assert!(d.dominated(0b011, 0, 10));
        d.record(0b100, 0, 1); // incomparable: antichain grows
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn wide_masks_dominate_across_word_boundaries() {
        type M = Words<2>;
        let blue = M::bit(70);
        let mut d = DominanceStore::<M>::default();
        d.record(M::bit(1) | M::bit(65), blue, 10);
        assert!(d.dominated(M::bit(65), blue, 11), "high-word subset");
        assert!(!d.dominated(M::bit(66), blue, 11), "incomparable high word");
        assert!(
            !d.dominated(M::bit(65), M::bit(71), 11),
            "other blue bucket"
        );
    }
}
