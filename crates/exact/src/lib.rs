//! # pebblyn-exact — bound-guided optimal WRBPG solver
//!
//! Computing optimal red-blue pebbling schedules for arbitrary CDAGs is
//! PSPACE-hard, but for *small* graphs the full game-state space fits in
//! memory.  This crate finds the provably minimum weighted schedule cost —
//! and on request the schedule itself — with best-first **A\*** search over
//! complete game snapshots, guided by the admissible per-state lower bounds
//! of [`pebblyn_core::StateBounds`] and pruned four ways:
//!
//! * **heuristic guidance** ([`Heuristic`]) — each state is queued at
//!   `f = g + h` where `h` lower-bounds the remaining cost (unavoidable sink
//!   stores + source loads, optionally a forced-reload chain), so expansion
//!   concentrates on states that can still beat the incumbent;
//! * **dominance pruning** — a state is discarded when a recorded state with
//!   a red superset, the same blue set, and strictly smaller cost exists
//!   (deletes are free, so the dominator can reach anything the dominated
//!   state can, strictly cheaper);
//! * **successor tightening** — schedule-normalization arguments fuse every
//!   load block with the compute that consumes it and every store with the
//!   compute that creates it, and admit deletes only when the budget
//!   actually blocks a load/compute, collapsing vast equivalent-interleaving
//!   plateaus of the raw four-move game;
//! * **symmetry reduction** — structurally interchangeable *twin* nodes
//!   (identical predecessor and successor sets, hence equal weights:
//!   automorphism orbits found by [`pebblyn_core::twin_classes`]) are
//!   collapsed by rewriting every generated state to a per-orbit canonical
//!   form, so states that differ only by which twin holds a pebble are
//!   searched once.
//!
//! Frontier expansion is batched and hash-distributed
//! ([`pebblyn_engine::par::par_map_hash_distributed`], HDA\*-style): each
//! frontier state is expanded by the virtual shard owning its state hash,
//! with a deterministic steal rebalance, so results (costs, schedules, and
//! every statistic including the steal count) are byte-identical for any
//! thread count.  Every toggle can be switched off —
//! [`ExactSolver::dijkstra_baseline`] reproduces the PR-2 uniform-cost
//! search exactly — which is what the conformance harness uses to
//! differentially certify the optimizations.
//!
//! Its purpose in this workspace is **certification**: property tests assert
//! that the dataflow-specific dynamic programs of `pebblyn-schedulers`
//! (Algorithm 1, Eq. 6, Eq. 8) match this solver exactly on every small
//! instance, which is the strongest practical evidence that the DPs
//! implement the paper's optimality lemmas correctly.
//!
//! States are a pair of fixed-width bitsets (`red`, `blue`), one bit per
//! node, generic over [`StateMask`]: graphs of ≤ 64 nodes run on bare
//! `u64`s (byte-for-byte the historical fast path), wider graphs are
//! dispatched to const-generic [`Words`] masks up to [`MAX_NODES`] = 256
//! nodes, beyond which the solver returns a typed
//! [`ExactError::Unsupported`].  Hashing a state is a handful of word
//! multiplies, the weighted red occupancy is carried incrementally with
//! each queue entry, and the "all predecessors red" rule is a mask compare
//! against a precomputed per-node predecessor bitmask.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dominance;
mod search;

pub use pebblyn_core::Heuristic;
use pebblyn_core::{Cdag, Schedule, Weight};
pub use pebblyn_core::{StateMask, Words};

/// Widest graph the built-in mask dispatch supports (`Words<4>`).
///
/// [`ExactSolver::solve_with_mask`] accepts any sealed mask width, but the
/// automatic dispatch in [`ExactSolver::solve`] stops here.
pub const MAX_NODES: usize = 256;

/// Error: the search was about to exceed its state budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateLimitExceeded {
    /// The configured maximum number of expanded states.
    pub max_states: usize,
    /// States actually expanded before giving up (the cap is checked before
    /// each expansion, so this never overshoots `max_states`).
    pub states_expanded: usize,
}

impl std::fmt::Display for StateLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact search hit its state cap ({} of max {} states expanded)",
            self.states_expanded, self.max_states
        )
    }
}

impl std::error::Error for StateLimitExceeded {}

/// Former name of [`StateLimitExceeded`], kept for downstream callers.
pub type SearchLimitExceeded = StateLimitExceeded;

/// Why an exact solve could not produce an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The graph is wider than the widest state mask the solver (or the
    /// explicitly requested mask) can represent.  The message names the
    /// limit so callers can tell a representational limit from a resource
    /// one.
    Unsupported {
        /// Node count of the offending graph.
        nodes: usize,
        /// Widest node count the attempted configuration supports.
        limit: usize,
    },
    /// The search ran but exceeded its expansion cap.
    StateLimit(StateLimitExceeded),
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::Unsupported { nodes, limit } => write!(
                f,
                "graph has {nodes} nodes but the exact solver's state mask \
                 covers at most {limit}; split the instance or use a \
                 heuristic scheduler"
            ),
            ExactError::StateLimit(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ExactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExactError::StateLimit(e) => Some(e),
            ExactError::Unsupported { .. } => None,
        }
    }
}

impl ExactError {
    /// States the failed search actually expanded before erroring: the cap
    /// for [`ExactError::StateLimit`], and 0 for
    /// [`ExactError::Unsupported`], which rejects before searching.  Lets
    /// accounting callers (the conformance report keeps its state total
    /// equal to the telemetry counter) treat both arms uniformly.
    pub fn states_expanded(&self) -> usize {
        match self {
            ExactError::StateLimit(e) => e.states_expanded,
            ExactError::Unsupported { .. } => 0,
        }
    }
}

impl From<StateLimitExceeded> for ExactError {
    fn from(e: StateLimitExceeded) -> Self {
        ExactError::StateLimit(e)
    }
}

/// Counters describing one search run; all deterministic for a fixed
/// solver configuration, graph, and budget — independent of thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States popped from the open list and expanded.
    pub expanded: usize,
    /// Successor states generated (before dedup/dominance filtering).
    pub generated: usize,
    /// States discarded by dominance pruning (at generation or expansion).
    pub dominated: usize,
    /// Generated successors rejected because a path at least as cheap was
    /// already known.
    pub deduped: usize,
    /// Generated successors rewritten to a different twin-orbit canonical
    /// state by symmetry reduction (each rewrite merges an orbit sibling
    /// into its representative).
    pub symmetry_pruned: usize,
    /// Parallel expansion rounds driven through the sharded worklist.
    pub batches: usize,
    /// Frontier items expanded by a virtual shard other than their hash
    /// owner (the deterministic rebalance of hash-distributed expansion).
    pub frontier_steals: u64,
    /// Largest open-list size observed after a merge.
    pub peak_open: usize,
    /// Largest Pareto-antichain size of the dominance store.
    pub dominance_entries: usize,
    /// Open-list entries still queued when the goal was settled.
    pub frontier_left: usize,
    /// Partial-expansion re-pops: deferred parents popped a second (or
    /// later) time at the f-value of their best unmaterialized successor.
    /// A subset of `expanded`; zero when partial expansion is off.
    pub re_expanded: usize,
    /// The admissible lower bound evaluated at the start state.
    pub root_bound: Weight,
    /// 64-bit words per state mask this solve ran with (1 = u64 fast path).
    pub mask_words: usize,
}

/// A finished search: the optimal cost (`None` when no schedule exists
/// under the budget), the reconstructed schedule when requested, and the
/// run's [`SearchStats`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Minimum weighted schedule cost, or `None` when the budget admits no
    /// valid schedule.
    pub cost: Option<Weight>,
    /// The optimal schedule, present iff reconstruction was requested and
    /// the instance is feasible.
    pub schedule: Option<Schedule>,
    /// Search counters.
    pub stats: SearchStats,
}

/// Exhaustive solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExactSolver {
    /// Maximum number of states to expand before giving up (checked before
    /// each expansion).
    pub max_states: usize,
    /// Cost per bit of an M1 (load) move.
    pub load_scale: Weight,
    /// Cost per bit of an M2 (store) move.
    pub store_scale: Weight,
    /// Which admissible per-state lower bound guides the search.
    pub heuristic: Heuristic,
    /// Enable dominance pruning.
    pub dominance: bool,
    /// Enable the tightened macro-move successor relation; `false` falls
    /// back to the raw four-move game (the ablation baseline).
    pub tighten: bool,
    /// Enable twin-orbit symmetry reduction.  Automatically suspended while
    /// reconstructing a schedule (canonical states lose the concrete move
    /// identities a replayable schedule needs); cost-only solves keep it.
    pub symmetry: bool,
    /// Enable the WL-orbit lever on top of twin symmetry: canonicalize
    /// states through certified automorphism generators beyond exact twins.
    /// Only active when `symmetry` is also on (it extends, never replaces,
    /// the twin sort), and suspended during schedule reconstruction for the
    /// same reason.
    pub wl_symmetry: bool,
    /// Enable partial expansion (PEA*): successors above the parent's
    /// popped f-value are not materialized; the parent re-enqueues at the
    /// best deferred f instead, trading re-expansions for open-list peak.
    pub partial_expansion: bool,
    /// States expanded per parallel frontier round.  Fixed (not derived from
    /// the thread count) so results are byte-identical on any host.
    pub batch_size: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            max_states: 5_000_000,
            load_scale: 1,
            store_scale: 1,
            heuristic: Heuristic::default(),
            dominance: true,
            tighten: true,
            symmetry: true,
            wl_symmetry: true,
            partial_expansion: true,
            batch_size: 32,
        }
    }
}

impl ExactSolver {
    /// Create a solver with an explicit state cap.
    pub fn with_max_states(max_states: usize) -> Self {
        ExactSolver {
            max_states,
            ..Default::default()
        }
    }

    /// Use asymmetric per-bit I/O costs (loads × `load`, stores × `store`).
    pub fn with_io_scales(mut self, load: Weight, store: Weight) -> Self {
        self.load_scale = load;
        self.store_scale = store;
        self
    }

    /// Select the guiding lower bound ([`Heuristic::None`] degenerates to
    /// uniform-cost search).
    pub fn with_heuristic(mut self, heuristic: Heuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Toggle dominance pruning.
    pub fn with_dominance(mut self, on: bool) -> Self {
        self.dominance = on;
        self
    }

    /// Toggle the tightened macro-move successor relation.
    pub fn with_tighten(mut self, on: bool) -> Self {
        self.tighten = on;
        self
    }

    /// Toggle twin-orbit symmetry reduction.
    pub fn with_symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Toggle the WL-orbit lever (certified automorphism generators beyond
    /// exact twins).  Inert unless `symmetry` is also on.
    pub fn with_wl_symmetry(mut self, on: bool) -> Self {
        self.wl_symmetry = on;
        self
    }

    /// Toggle partial expansion (PEA*).
    pub fn with_partial_expansion(mut self, on: bool) -> Self {
        self.partial_expansion = on;
        self
    }

    /// The PR-2 uniform-cost Dijkstra baseline: no heuristic, no dominance,
    /// raw four-move successors, no symmetry reduction, full expansion.
    /// Used for ablations and as the differential oracle certifying the
    /// optimized search.
    pub fn dijkstra_baseline() -> Self {
        ExactSolver::default()
            .with_heuristic(Heuristic::None)
            .with_dominance(false)
            .with_tighten(false)
            .with_symmetry(false)
            .with_wl_symmetry(false)
            .with_partial_expansion(false)
    }

    /// Minimum weighted schedule cost for `graph` under `budget`, or
    /// `Ok(None)` when no valid schedule exists.
    pub fn min_cost(&self, graph: &Cdag, budget: Weight) -> Result<Option<Weight>, ExactError> {
        self.solve(graph, budget).map(|s| s.cost)
    }

    /// A provably optimal schedule, or `Ok(None)` when no valid schedule
    /// exists.
    pub fn optimal_schedule(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Option<(Weight, Schedule)>, ExactError> {
        let sol = self.solve_with_schedule(graph, budget)?;
        Ok(sol.cost.map(|c| {
            (
                c,
                sol.schedule
                    .expect("feasible solve_with_schedule has a schedule"),
            )
        }))
    }

    /// Run the search and return cost + statistics (no schedule
    /// reconstruction, so the parent map is never built).
    ///
    /// Dispatches to the narrowest mask that fits the graph: bare `u64` up
    /// to 64 nodes (the zero-cost fast path), then `Words<2>` and
    /// `Words<4>`; graphs wider than [`MAX_NODES`] get
    /// [`ExactError::Unsupported`].
    pub fn solve(&self, graph: &Cdag, budget: Weight) -> Result<Solution, ExactError> {
        self.dispatch(graph, budget, false)
    }

    /// Run the search with schedule reconstruction (same mask dispatch as
    /// [`ExactSolver::solve`]).
    pub fn solve_with_schedule(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Solution, ExactError> {
        self.dispatch(graph, budget, true)
    }

    /// Run the search with an explicitly chosen mask width (cost only).
    ///
    /// Exists for width-equivalence testing and benchmarking: a graph of
    /// ≤ 64 nodes solved via `Words<2>` must produce the same cost, the
    /// same schedule, and the same search trajectory as the `u64` fast
    /// path.  Errors with [`ExactError::Unsupported`] naming `M::BITS` when
    /// the graph does not fit the requested mask.
    pub fn solve_with_mask<M: StateMask>(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Solution, ExactError> {
        if graph.len() > M::BITS {
            return Err(ExactError::Unsupported {
                nodes: graph.len(),
                limit: M::BITS,
            });
        }
        search::search::<M>(self, graph, budget, false).map_err(ExactError::from)
    }

    /// Run the search with an explicitly chosen mask width, reconstructing
    /// the schedule (see [`ExactSolver::solve_with_mask`]).
    pub fn solve_with_schedule_and_mask<M: StateMask>(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Solution, ExactError> {
        if graph.len() > M::BITS {
            return Err(ExactError::Unsupported {
                nodes: graph.len(),
                limit: M::BITS,
            });
        }
        search::search::<M>(self, graph, budget, true).map_err(ExactError::from)
    }

    fn dispatch(
        &self,
        graph: &Cdag,
        budget: Weight,
        reconstruct: bool,
    ) -> Result<Solution, ExactError> {
        let n = graph.len();
        let result = if n <= 64 {
            search::search::<u64>(self, graph, budget, reconstruct)
        } else if n <= 128 {
            search::search::<Words<2>>(self, graph, budget, reconstruct)
        } else if n <= MAX_NODES {
            search::search::<Words<4>>(self, graph, budget, reconstruct)
        } else {
            return Err(ExactError::Unsupported {
                nodes: n,
                limit: MAX_NODES,
            });
        };
        result.map_err(ExactError::from)
    }
}

/// Convenience wrapper: minimum cost with the default state cap.
pub fn exact_min_cost(graph: &Cdag, budget: Weight) -> Option<Weight> {
    ExactSolver::default()
        .min_cost(graph, budget)
        .expect("exact search failed; use ExactSolver for control")
}

/// Convenience wrapper: an optimal schedule with the default state cap.
pub fn exact_optimal_schedule(graph: &Cdag, budget: Weight) -> Option<(Weight, Schedule)> {
    ExactSolver::default()
        .optimal_schedule(graph, budget)
        .expect("exact search failed; use ExactSolver for control")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{validate_schedule, CdagBuilder};

    /// Every solver configuration the tests sweep: default A\* plus each
    /// ablation axis and the full Dijkstra baseline.
    fn all_configs() -> Vec<ExactSolver> {
        vec![
            ExactSolver::default(),
            ExactSolver::default().with_heuristic(Heuristic::None),
            ExactSolver::default().with_heuristic(Heuristic::RemainingWork),
            ExactSolver::default().with_heuristic(Heuristic::ForcedReload),
            ExactSolver::default().with_dominance(false),
            ExactSolver::default().with_tighten(false),
            ExactSolver::default().with_symmetry(false),
            ExactSolver::default().with_wl_symmetry(false),
            ExactSolver::default().with_partial_expansion(false),
            ExactSolver::default()
                .with_wl_symmetry(false)
                .with_partial_expansion(false)
                .with_heuristic(Heuristic::ForcedReload),
            ExactSolver::dijkstra_baseline(),
            ExactSolver {
                batch_size: 1,
                ..ExactSolver::default()
            },
        ]
    }

    /// x, y -> s
    fn add_graph() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        b.edge(x, s);
        b.edge(y, s);
        b.build().unwrap()
    }

    #[test]
    fn single_add_is_lower_bound_tight() {
        let g = add_graph();
        // Tight budget: exactly the parent closure.
        let (cost, sched) = exact_optimal_schedule(&g, 64).unwrap();
        assert_eq!(cost, 16 + 16 + 32);
        let stats = validate_schedule(&g, 64, &sched).unwrap();
        assert_eq!(stats.cost, cost);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let g = add_graph();
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 63).unwrap(), None);
        }
    }

    #[test]
    fn chain_cost_is_ends_only() {
        // x -> a -> b : inputs loaded once, output stored once, interior free.
        let mut bld = CdagBuilder::new();
        let x = bld.node(16, "x");
        let a = bld.node(16, "a");
        let b2 = bld.node(16, "b");
        bld.edge(x, a);
        bld.edge(a, b2);
        let g = bld.build().unwrap();
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 32).unwrap(), Some(32));
        }
    }

    #[test]
    fn tight_budget_forces_spills() {
        // Full binary tree with 4 leaves, uniform weight 1.
        // With 3 red pebbles a binary tree of depth 2 pebbles with no spill:
        // cost = 4 loads + 1 store = 5.
        let mut b = CdagBuilder::new();
        let l: Vec<_> = (0..4).map(|i| b.node(1, format!("l{i}"))).collect();
        let i0 = b.node(1, "i0");
        let i1 = b.node(1, "i1");
        let r = b.node(1, "r");
        b.edge(l[0], i0);
        b.edge(l[1], i0);
        b.edge(l[2], i1);
        b.edge(l[3], i1);
        b.edge(i0, r);
        b.edge(i1, r);
        let g = b.build().unwrap();
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 4).unwrap(), Some(5));
            // Budget 3 = minimum feasible: i0 must be spilled and reloaded.
            assert_eq!(solver.min_cost(&g, 3).unwrap(), Some(7));
            assert_eq!(solver.min_cost(&g, 2).unwrap(), None);
        }
    }

    #[test]
    fn reuse_is_found() {
        // diamond: b feeds both c and d; optimal keeps b red.
        let mut bld = CdagBuilder::new();
        let a = bld.node(1, "a");
        let b = bld.node(1, "b");
        let c = bld.node(1, "c");
        let d = bld.node(1, "d");
        let e = bld.node(1, "e");
        bld.edge(a, c);
        bld.edge(b, c);
        bld.edge(b, d);
        bld.edge(c, e);
        bld.edge(d, e);
        let g = bld.build().unwrap();
        // Budget 3: load a, b; compute c; delete a; compute d; delete b;
        // compute e; store e.  Cost = 2 loads + 1 store = 3.
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 3).unwrap(), Some(3));
        }
    }

    #[test]
    fn schedule_reconstruction_is_valid() {
        let g = add_graph();
        for solver in all_configs() {
            let (cost, sched) = solver.optimal_schedule(&g, 100).unwrap().unwrap();
            let stats = validate_schedule(&g, 100, &sched).unwrap();
            assert_eq!(stats.cost, cost);
        }
    }

    #[test]
    fn state_cap_is_enforced_before_expansion() {
        let g = add_graph();
        // A zero-state cap refuses to expand even the start state…
        let err = ExactSolver::with_max_states(0)
            .min_cost(&g, 64)
            .unwrap_err();
        let ExactError::StateLimit(err) = err else {
            panic!("expected a state-limit error, got {err:?}");
        };
        assert_eq!(err.max_states, 0);
        assert_eq!(err.states_expanded, 0, "cap must trigger before expanding");
        // …and the baseline (which cannot reach the goal in one expansion)
        // reports exactly the cap, never cap+1 as the pre-rewrite solver did.
        let one = ExactSolver {
            max_states: 1,
            ..ExactSolver::dijkstra_baseline()
        };
        let err = one.min_cost(&g, 64).unwrap_err();
        let ExactError::StateLimit(err) = err else {
            panic!("expected a state-limit error, got {err:?}");
        };
        assert_eq!(err.max_states, 1);
        assert_eq!(err.states_expanded, 1);
    }

    #[test]
    fn weighted_asymmetry_changes_strategy() {
        // Two children share a heavy parent: with a tight budget the solver
        // must discover the cheaper spill order.
        let mut bld = CdagBuilder::new();
        let h = bld.node(10, "heavy");
        let l = bld.node(1, "light");
        let c1 = bld.node(1, "c1");
        let c2 = bld.node(1, "c2");
        bld.edge(h, c1);
        bld.edge(l, c1);
        bld.edge(h, c2);
        bld.edge(c1, c2);
        let g = bld.build().unwrap();
        // Budget 12: h + l + c1 = 12 ok; then c2 needs h + c1 + c2 = 12 ok
        // (delete l). Cost = 10 + 1 (loads) + 1 (store c2)... c1 is interior.
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 12).unwrap(), Some(12));
        }
    }

    #[test]
    fn io_scales_apply_to_all_configs() {
        let g = add_graph();
        for solver in all_configs() {
            let solver = solver.with_io_scales(3, 5);
            // 3×(16+16) loads + 5×32 store.
            assert_eq!(solver.min_cost(&g, 64).unwrap(), Some(3 * 32 + 5 * 32));
        }
    }

    #[test]
    fn stats_reflect_pruning() {
        let g = add_graph();
        let fast = ExactSolver::default().solve(&g, 64).unwrap();
        let slow = ExactSolver::dijkstra_baseline().solve(&g, 64).unwrap();
        assert_eq!(fast.cost, slow.cost);
        assert!(fast.stats.expanded <= slow.stats.expanded);
        assert!(fast.stats.root_bound > 0, "A* start state has a bound");
        assert_eq!(slow.stats.root_bound, 0, "Dijkstra has no bound");
        assert!(slow.stats.generated > 0 && fast.stats.generated > 0);
        assert_eq!(fast.stats.mask_words, 1, "small graph uses the u64 path");
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        // par_map splits batches by PEBBLYN_THREADS; results and stats must
        // not depend on it.  (Thread count is process-wide env, so we only
        // assert repeat determinism here; engine tests cover thread-count
        // invariance of par_map ordering.)
        let g = add_graph();
        let a = ExactSolver::default().solve_with_schedule(&g, 64).unwrap();
        let b = ExactSolver::default().solve_with_schedule(&g, 64).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.schedule.as_ref().map(|s| s.moves().to_vec()),
            b.schedule.as_ref().map(|s| s.moves().to_vec())
        );
    }

    /// Chain of `n` unit-weight nodes.
    fn chain(n: usize) -> Cdag {
        let mut b = CdagBuilder::new();
        let ids: Vec<_> = (0..n).map(|i| b.node(1, format!("n{i}"))).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn graphs_past_64_nodes_dispatch_to_wide_masks() {
        // A 70-node chain crosses the old u64 wall; interior nodes are free,
        // so the optimal cost is load(head) + store(tail) = 2.
        let g = chain(70);
        let sol = ExactSolver::default().solve(&g, 2).unwrap();
        assert_eq!(sol.cost, Some(2));
        assert_eq!(sol.stats.mask_words, 2, "70 nodes need Words<2>");
        let (cost, sched) = ExactSolver::default()
            .optimal_schedule(&g, 2)
            .unwrap()
            .unwrap();
        assert_eq!(cost, 2);
        assert_eq!(validate_schedule(&g, 2, &sched).unwrap().cost, 2);
    }

    #[test]
    fn forced_wide_mask_matches_u64_fast_path_exactly() {
        let g = add_graph();
        let solver = ExactSolver::default();
        let narrow = solver.solve_with_schedule_and_mask::<u64>(&g, 64).unwrap();
        let wide = solver
            .solve_with_schedule_and_mask::<Words<2>>(&g, 64)
            .unwrap();
        assert_eq!(narrow.cost, wide.cost);
        assert_eq!(
            narrow.schedule.as_ref().map(|s| s.moves().to_vec()),
            wide.schedule.as_ref().map(|s| s.moves().to_vec()),
            "shared-width runs must take the identical search trajectory"
        );
        assert_eq!(narrow.stats.expanded, wide.stats.expanded);
        assert_eq!(narrow.stats.frontier_steals, wide.stats.frontier_steals);
    }

    #[test]
    fn too_wide_graphs_get_a_typed_unsupported_error() {
        let g = chain(MAX_NODES + 1);
        let err = ExactSolver::default().solve(&g, 3).unwrap_err();
        assert_eq!(
            err,
            ExactError::Unsupported {
                nodes: MAX_NODES + 1,
                limit: MAX_NODES
            }
        );
        assert!(err.to_string().contains("at most 256"), "names the limit");
        // Width-forcing APIs name the *requested* mask's limit instead.
        let err = ExactSolver::default()
            .solve_with_mask::<u64>(&chain(70), 2)
            .unwrap_err();
        assert_eq!(
            err,
            ExactError::Unsupported {
                nodes: 70,
                limit: 64
            }
        );
    }

    #[test]
    fn symmetry_reduction_preserves_cost_and_prunes_states() {
        // Chained diamonds a -> {b, c} -> d -> {e, f} -> g: each diamond's
        // midpoints are a twin orbit, so without reduction the search walks
        // both "computed b first" and "computed c first" state families.
        let mut b = CdagBuilder::new();
        let ids: Vec<_> = (0..7).map(|i| b.node(1, format!("n{i}"))).collect();
        for d in 0..2 {
            let (a, m1, m2, z) = (ids[3 * d], ids[3 * d + 1], ids[3 * d + 2], ids[3 * d + 3]);
            b.edge(a, m1);
            b.edge(a, m2);
            b.edge(m1, z);
            b.edge(m2, z);
        }
        let g = b.build().unwrap();
        let on = ExactSolver::default().solve(&g, 3).unwrap();
        let off = ExactSolver::default()
            .with_symmetry(false)
            .solve(&g, 3)
            .unwrap();
        assert_eq!(on.cost, off.cost, "symmetry reduction never changes cost");
        assert!(on.cost.is_some());
        assert!(
            on.stats.expanded < off.stats.expanded,
            "orbit collapsing must shrink the reachable state space \
             ({} vs {})",
            on.stats.expanded,
            off.stats.expanded
        );
        assert!(on.stats.symmetry_pruned > 0);
        assert_eq!(off.stats.symmetry_pruned, 0);
    }
}
