//! # pebblyn-exact — exhaustive optimal WRBPG solver
//!
//! Computing optimal red-blue pebbling schedules for arbitrary CDAGs is
//! PSPACE-complete, but for *small* graphs the full game-state space fits in
//! memory.  This crate runs uniform-cost search (Dijkstra) over complete
//! game snapshots, yielding the provably minimum weighted schedule cost — and
//! on request the schedule itself.
//!
//! Its purpose in this workspace is **certification**: property tests assert
//! that the dataflow-specific dynamic programs of `pebblyn-schedulers`
//! (Algorithm 1, Eq. 6, Eq. 8) match this solver exactly on every small
//! instance, which is the strongest practical evidence that the DPs implement
//! the paper's optimality lemmas correctly.
//!
//! States are a pair of fixed-width bitsets (`red`, `blue`), one bit per
//! node, so graphs are limited to 64 nodes (far beyond what the search can
//! exhaust anyway).  Hashing a state is two word multiplies, the weighted
//! red occupancy is carried incrementally with each queue entry, and the
//! "all predecessors red" rule is a single mask compare against a
//! precomputed per-node predecessor bitmask.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pebblyn_core::{Cdag, FastHashMap, Move, NodeId, Schedule, Weight};
use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;

/// Dijkstra maps keyed by packed [`State`]s; two word-folds per probe.
type StateMap<V> = FastHashMap<State, V>;

/// Error: the search exceeded its state budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchLimitExceeded {
    /// The configured maximum number of expanded states.
    pub max_states: usize,
}

impl std::fmt::Display for SearchLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exact search exceeded {} states", self.max_states)
    }
}

impl std::error::Error for SearchLimitExceeded {}

/// Packed game snapshot: one red and one blue bitset word, one bit per node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
struct State {
    red: u64,
    blue: u64,
}

impl State {
    #[inline]
    fn has_red(self, v: usize) -> bool {
        self.red >> v & 1 != 0
    }
    #[inline]
    fn has_blue(self, v: usize) -> bool {
        self.blue >> v & 1 != 0
    }
    #[inline]
    fn add_red(self, v: usize) -> State {
        State {
            red: self.red | 1 << v,
            ..self
        }
    }
    #[inline]
    fn add_blue(self, v: usize) -> State {
        State {
            blue: self.blue | 1 << v,
            ..self
        }
    }
    #[inline]
    fn drop_red(self, v: usize) -> State {
        State {
            red: self.red & !(1 << v),
            ..self
        }
    }
}

/// Exhaustive solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExactSolver {
    /// Maximum number of distinct states to settle before giving up.
    pub max_states: usize,
    /// Cost per bit of an M1 (load) move.
    pub load_scale: Weight,
    /// Cost per bit of an M2 (store) move.
    pub store_scale: Weight,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            max_states: 5_000_000,
            load_scale: 1,
            store_scale: 1,
        }
    }
}

#[derive(PartialEq, Eq)]
struct QueueItem {
    cost: Weight,
    state: State,
    /// Weighted red occupancy of `state`, carried incrementally so
    /// expansion never rescans the node set.  A pure function of
    /// `state.red`, so duplicate queue entries always agree.
    red_weight: Weight,
}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by cost.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.state.cmp(&self.state))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl ExactSolver {
    /// Create a solver with an explicit state cap.
    pub fn with_max_states(max_states: usize) -> Self {
        ExactSolver {
            max_states,
            ..Default::default()
        }
    }

    /// Use asymmetric per-bit I/O costs (loads × `load`, stores × `store`).
    pub fn with_io_scales(mut self, load: Weight, store: Weight) -> Self {
        self.load_scale = load;
        self.store_scale = store;
        self
    }

    /// Minimum weighted schedule cost for `graph` under `budget`, or
    /// `Ok(None)` when no valid schedule exists.
    pub fn min_cost(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Option<Weight>, SearchLimitExceeded> {
        self.search(graph, budget, false).map(|r| r.map(|(c, _)| c))
    }

    /// A provably optimal schedule, or `Ok(None)` when no valid schedule
    /// exists.
    pub fn optimal_schedule(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Option<(Weight, Schedule)>, SearchLimitExceeded> {
        self.search(graph, budget, true)
            .map(|r| r.map(|(c, s)| (c, s.expect("schedule reconstruction was requested"))))
    }

    fn search(
        &self,
        graph: &Cdag,
        budget: Weight,
        reconstruct: bool,
    ) -> Result<Option<(Weight, Option<Schedule>)>, SearchLimitExceeded> {
        assert!(
            graph.len() <= 64,
            "exact solver supports at most 64 nodes (got {})",
            graph.len()
        );
        let n = graph.len();

        // Flat per-node tables + bitmasks so the expansion loop never
        // touches the graph's adjacency or re-derives weights.
        let weights: Vec<Weight> = (0..n).map(|v| graph.weight(NodeId(v as u32))).collect();
        let pred_mask: Vec<u64> = (0..n)
            .map(|v| {
                graph
                    .preds(NodeId(v as u32))
                    .iter()
                    .fold(0u64, |m, p| m | 1 << p.index())
            })
            .collect();
        let source_mask: u64 = graph.sources().iter().fold(0, |m, v| m | 1 << v.index());
        let sink_mask: u64 = graph.sinks().iter().fold(0, |m, v| m | 1 << v.index());

        let start = State {
            red: 0,
            blue: source_mask,
        };

        // dist: settled/backing costs; parent: for reconstruction.
        let mut dist: StateMap<Weight> = StateMap::default();
        let mut parent: StateMap<(State, Move)> = StateMap::default();
        let mut heap = BinaryHeap::new();
        dist.insert(start, 0);
        heap.push(QueueItem {
            cost: 0,
            state: start,
            red_weight: 0,
        });
        let mut expanded = 0usize;

        while let Some(QueueItem {
            cost,
            state,
            red_weight,
        }) = heap.pop()
        {
            if dist.get(&state).copied() != Some(cost) {
                continue; // stale entry
            }
            if state.blue & sink_mask == sink_mask {
                let schedule = reconstruct.then(|| {
                    let mut moves = Vec::new();
                    let mut cur = state;
                    while let Some(&(prev, mv)) = parent.get(&cur) {
                        moves.push(mv);
                        cur = prev;
                    }
                    moves.reverse();
                    Schedule::from_moves(moves)
                });
                return Ok(Some((cost, schedule)));
            }
            expanded += 1;
            if expanded > self.max_states {
                return Err(SearchLimitExceeded {
                    max_states: self.max_states,
                });
            }

            let push = |next: State,
                        next_red_weight: Weight,
                        extra: Weight,
                        mv: Move,
                        dist: &mut StateMap<Weight>,
                        parent: &mut StateMap<(State, Move)>,
                        heap: &mut BinaryHeap<QueueItem>| {
                let nc = cost + extra;
                match dist.entry(next) {
                    Entry::Occupied(mut e) => {
                        if nc < *e.get() {
                            e.insert(nc);
                            if reconstruct {
                                parent.insert(next, (state, mv));
                            }
                            heap.push(QueueItem {
                                cost: nc,
                                state: next,
                                red_weight: next_red_weight,
                            });
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(nc);
                        if reconstruct {
                            parent.insert(next, (state, mv));
                        }
                        heap.push(QueueItem {
                            cost: nc,
                            state: next,
                            red_weight: next_red_weight,
                        });
                    }
                }
            };

            for v in 0..n {
                let id = NodeId(v as u32);
                let w = weights[v];
                let has_red = state.has_red(v);
                let has_blue = state.has_blue(v);

                // M1: load — only useful when it changes the label.
                if has_blue && !has_red && red_weight + w <= budget {
                    push(
                        state.add_red(v),
                        red_weight + w,
                        self.load_scale * w,
                        Move::Load(id),
                        &mut dist,
                        &mut parent,
                        &mut heap,
                    );
                }
                // M2: store — only useful when the node is red-only.
                if has_red && !has_blue {
                    push(
                        state.add_blue(v),
                        red_weight,
                        self.store_scale * w,
                        Move::Store(id),
                        &mut dist,
                        &mut parent,
                        &mut heap,
                    );
                }
                // M3: compute — non-source, all preds red, not already red.
                if !has_red
                    && source_mask >> v & 1 == 0
                    && state.red & pred_mask[v] == pred_mask[v]
                    && red_weight + w <= budget
                {
                    push(
                        state.add_red(v),
                        red_weight + w,
                        0,
                        Move::Compute(id),
                        &mut dist,
                        &mut parent,
                        &mut heap,
                    );
                }
                // M4: delete.
                if has_red {
                    push(
                        state.drop_red(v),
                        red_weight - w,
                        0,
                        Move::Delete(id),
                        &mut dist,
                        &mut parent,
                        &mut heap,
                    );
                }
            }
        }
        Ok(None)
    }
}

/// Convenience wrapper: minimum cost with the default state cap.
pub fn exact_min_cost(graph: &Cdag, budget: Weight) -> Option<Weight> {
    ExactSolver::default()
        .min_cost(graph, budget)
        .expect("exact search exceeded state cap; use ExactSolver for control")
}

/// Convenience wrapper: an optimal schedule with the default state cap.
pub fn exact_optimal_schedule(graph: &Cdag, budget: Weight) -> Option<(Weight, Schedule)> {
    ExactSolver::default()
        .optimal_schedule(graph, budget)
        .expect("exact search exceeded state cap; use ExactSolver for control")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{validate_schedule, CdagBuilder};

    /// x, y -> s
    fn add_graph() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        b.edge(x, s);
        b.edge(y, s);
        b.build().unwrap()
    }

    #[test]
    fn single_add_is_lower_bound_tight() {
        let g = add_graph();
        // Tight budget: exactly the parent closure.
        let (cost, sched) = exact_optimal_schedule(&g, 64).unwrap();
        assert_eq!(cost, 16 + 16 + 32);
        let stats = validate_schedule(&g, 64, &sched).unwrap();
        assert_eq!(stats.cost, cost);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let g = add_graph();
        assert_eq!(exact_min_cost(&g, 63), None);
    }

    #[test]
    fn chain_cost_is_ends_only() {
        // x -> a -> b : inputs loaded once, output stored once, interior free.
        let mut bld = CdagBuilder::new();
        let x = bld.node(16, "x");
        let a = bld.node(16, "a");
        let b2 = bld.node(16, "b");
        bld.edge(x, a);
        bld.edge(a, b2);
        let g = bld.build().unwrap();
        assert_eq!(exact_min_cost(&g, 32), Some(32));
    }

    #[test]
    fn tight_budget_forces_spills() {
        // Full binary tree with 4 leaves, uniform weight 1.
        // With 3 red pebbles a binary tree of depth 2 pebbles with no spill:
        // cost = 4 loads + 1 store = 5.
        let mut b = CdagBuilder::new();
        let l: Vec<_> = (0..4).map(|i| b.node(1, format!("l{i}"))).collect();
        let i0 = b.node(1, "i0");
        let i1 = b.node(1, "i1");
        let r = b.node(1, "r");
        b.edge(l[0], i0);
        b.edge(l[1], i0);
        b.edge(l[2], i1);
        b.edge(l[3], i1);
        b.edge(i0, r);
        b.edge(i1, r);
        let g = b.build().unwrap();
        assert_eq!(exact_min_cost(&g, 4), Some(5));
        // Budget 3 = minimum feasible: i0 must be spilled and reloaded.
        assert_eq!(exact_min_cost(&g, 3), Some(7));
        assert_eq!(exact_min_cost(&g, 2), None);
    }

    #[test]
    fn reuse_is_found() {
        // diamond: b feeds both c and d; optimal keeps b red.
        let mut bld = CdagBuilder::new();
        let a = bld.node(1, "a");
        let b = bld.node(1, "b");
        let c = bld.node(1, "c");
        let d = bld.node(1, "d");
        let e = bld.node(1, "e");
        bld.edge(a, c);
        bld.edge(b, c);
        bld.edge(b, d);
        bld.edge(c, e);
        bld.edge(d, e);
        let g = bld.build().unwrap();
        // Budget 3: load a, b; compute c; delete a; compute d (b,c,d red
        // exceeds 3? b,c red + d = 3 ok after deleting a); compute e needs
        // c,d red + e = 3. Cost = 2 loads + 1 store = 3.
        assert_eq!(exact_min_cost(&g, 3), Some(3));
    }

    #[test]
    fn schedule_reconstruction_is_valid() {
        let g = add_graph();
        let (cost, sched) = exact_optimal_schedule(&g, 100).unwrap();
        let stats = validate_schedule(&g, 100, &sched).unwrap();
        assert_eq!(stats.cost, cost);
    }

    #[test]
    fn state_cap_is_enforced() {
        let g = add_graph();
        let solver = ExactSolver::with_max_states(1);
        assert!(solver.min_cost(&g, 64).is_err());
    }

    #[test]
    fn weighted_asymmetry_changes_strategy() {
        // Two children share a heavy parent: with a tight budget the solver
        // must discover the cheaper spill order.
        let mut bld = CdagBuilder::new();
        let h = bld.node(10, "heavy");
        let l = bld.node(1, "light");
        let c1 = bld.node(1, "c1");
        let c2 = bld.node(1, "c2");
        bld.edge(h, c1);
        bld.edge(l, c1);
        bld.edge(h, c2);
        bld.edge(c1, c2);
        let g = bld.build().unwrap();
        // Budget 12: h + l + c1 = 12 ok; then c2 needs h + c1 + c2 = 12 ok
        // (delete l). Cost = 10 + 1 (loads) + 1 (store c2)... c1 is interior.
        assert_eq!(exact_min_cost(&g, 12), Some(12));
    }
}
