//! # pebblyn-exact — bound-guided optimal WRBPG solver
//!
//! Computing optimal red-blue pebbling schedules for arbitrary CDAGs is
//! PSPACE-hard, but for *small* graphs the full game-state space fits in
//! memory.  This crate finds the provably minimum weighted schedule cost —
//! and on request the schedule itself — with best-first **A\*** search over
//! complete game snapshots, guided by the admissible per-state lower bounds
//! of [`pebblyn_core::StateBounds`] and pruned three ways:
//!
//! * **heuristic guidance** ([`Heuristic`]) — each state is queued at
//!   `f = g + h` where `h` lower-bounds the remaining cost (unavoidable sink
//!   stores + source loads, optionally a forced-reload chain), so expansion
//!   concentrates on states that can still beat the incumbent;
//! * **dominance pruning** — a state is discarded when a recorded state with
//!   a red superset, the same blue set, and strictly smaller cost exists
//!   (deletes are free, so the dominator can reach anything the dominated
//!   state can, strictly cheaper);
//! * **successor tightening** — schedule-normalization arguments fuse every
//!   load block with the compute that consumes it and every store with the
//!   compute that creates it, and admit deletes only when the budget
//!   actually blocks a load/compute, collapsing vast equivalent-interleaving
//!   plateaus of the raw four-move game.
//!
//! Frontier expansion is batched and runs through
//! [`pebblyn_engine::par::par_map`] over a sharded open list with
//! deterministic tie-breaking, so results (costs, schedules, statistics) are
//! byte-identical for any thread count.  Every toggle can be switched off —
//! [`ExactSolver::dijkstra_baseline`] reproduces the PR-2 uniform-cost
//! search exactly — which is what the conformance harness uses to
//! differentially certify the optimizations.
//!
//! Its purpose in this workspace is **certification**: property tests assert
//! that the dataflow-specific dynamic programs of `pebblyn-schedulers`
//! (Algorithm 1, Eq. 6, Eq. 8) match this solver exactly on every small
//! instance, which is the strongest practical evidence that the DPs
//! implement the paper's optimality lemmas correctly.
//!
//! States are a pair of fixed-width bitsets (`red`, `blue`), one bit per
//! node, so graphs are limited to 64 nodes (far beyond what the search can
//! exhaust anyway).  Hashing a state is two word multiplies, the weighted
//! red occupancy is carried incrementally with each queue entry, and the
//! "all predecessors red" rule is a single mask compare against a
//! precomputed per-node predecessor bitmask.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dominance;
mod search;

pub use pebblyn_core::Heuristic;
use pebblyn_core::{Cdag, Schedule, Weight};

/// Error: the search was about to exceed its state budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateLimitExceeded {
    /// The configured maximum number of expanded states.
    pub max_states: usize,
    /// States actually expanded before giving up (the cap is checked before
    /// each expansion, so this never overshoots `max_states`).
    pub states_expanded: usize,
}

impl std::fmt::Display for StateLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact search hit its state cap ({} of max {} states expanded)",
            self.states_expanded, self.max_states
        )
    }
}

impl std::error::Error for StateLimitExceeded {}

/// Former name of [`StateLimitExceeded`], kept for downstream callers.
pub type SearchLimitExceeded = StateLimitExceeded;

/// Counters describing one search run; all deterministic for a fixed
/// solver configuration, graph, and budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States popped from the open list and expanded.
    pub expanded: usize,
    /// Successor states generated (before dedup/dominance filtering).
    pub generated: usize,
    /// States discarded by dominance pruning (at generation or expansion).
    pub dominated: usize,
    /// Generated successors rejected because a path at least as cheap was
    /// already known.
    pub deduped: usize,
    /// Parallel expansion rounds driven through the sharded worklist.
    pub batches: usize,
    /// Largest open-list size observed after a merge.
    pub peak_open: usize,
    /// Largest Pareto-antichain size of the dominance store.
    pub dominance_entries: usize,
    /// Open-list entries still queued when the goal was settled.
    pub frontier_left: usize,
    /// The admissible lower bound evaluated at the start state.
    pub root_bound: Weight,
}

/// A finished search: the optimal cost (`None` when no schedule exists
/// under the budget), the reconstructed schedule when requested, and the
/// run's [`SearchStats`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Minimum weighted schedule cost, or `None` when the budget admits no
    /// valid schedule.
    pub cost: Option<Weight>,
    /// The optimal schedule, present iff reconstruction was requested and
    /// the instance is feasible.
    pub schedule: Option<Schedule>,
    /// Search counters.
    pub stats: SearchStats,
}

/// Exhaustive solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExactSolver {
    /// Maximum number of states to expand before giving up (checked before
    /// each expansion).
    pub max_states: usize,
    /// Cost per bit of an M1 (load) move.
    pub load_scale: Weight,
    /// Cost per bit of an M2 (store) move.
    pub store_scale: Weight,
    /// Which admissible per-state lower bound guides the search.
    pub heuristic: Heuristic,
    /// Enable dominance pruning.
    pub dominance: bool,
    /// Enable the tightened macro-move successor relation; `false` falls
    /// back to the raw four-move game (the ablation baseline).
    pub tighten: bool,
    /// States expanded per parallel frontier round.  Fixed (not derived from
    /// the thread count) so results are byte-identical on any host.
    pub batch_size: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            max_states: 5_000_000,
            load_scale: 1,
            store_scale: 1,
            heuristic: Heuristic::default(),
            dominance: true,
            tighten: true,
            batch_size: 32,
        }
    }
}

impl ExactSolver {
    /// Create a solver with an explicit state cap.
    pub fn with_max_states(max_states: usize) -> Self {
        ExactSolver {
            max_states,
            ..Default::default()
        }
    }

    /// Use asymmetric per-bit I/O costs (loads × `load`, stores × `store`).
    pub fn with_io_scales(mut self, load: Weight, store: Weight) -> Self {
        self.load_scale = load;
        self.store_scale = store;
        self
    }

    /// Select the guiding lower bound ([`Heuristic::None`] degenerates to
    /// uniform-cost search).
    pub fn with_heuristic(mut self, heuristic: Heuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Toggle dominance pruning.
    pub fn with_dominance(mut self, on: bool) -> Self {
        self.dominance = on;
        self
    }

    /// Toggle the tightened macro-move successor relation.
    pub fn with_tighten(mut self, on: bool) -> Self {
        self.tighten = on;
        self
    }

    /// The PR-2 uniform-cost Dijkstra baseline: no heuristic, no dominance,
    /// raw four-move successors.  Used for ablations and as the differential
    /// oracle certifying the optimized search.
    pub fn dijkstra_baseline() -> Self {
        ExactSolver::default()
            .with_heuristic(Heuristic::None)
            .with_dominance(false)
            .with_tighten(false)
    }

    /// Minimum weighted schedule cost for `graph` under `budget`, or
    /// `Ok(None)` when no valid schedule exists.
    pub fn min_cost(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Option<Weight>, StateLimitExceeded> {
        self.solve(graph, budget).map(|s| s.cost)
    }

    /// A provably optimal schedule, or `Ok(None)` when no valid schedule
    /// exists.
    pub fn optimal_schedule(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Option<(Weight, Schedule)>, StateLimitExceeded> {
        let sol = self.solve_with_schedule(graph, budget)?;
        Ok(sol.cost.map(|c| {
            (
                c,
                sol.schedule
                    .expect("feasible solve_with_schedule has a schedule"),
            )
        }))
    }

    /// Run the search and return cost + statistics (no schedule
    /// reconstruction, so the parent map is never built).
    pub fn solve(&self, graph: &Cdag, budget: Weight) -> Result<Solution, StateLimitExceeded> {
        search::search(self, graph, budget, false)
    }

    /// Run the search with schedule reconstruction.
    pub fn solve_with_schedule(
        &self,
        graph: &Cdag,
        budget: Weight,
    ) -> Result<Solution, StateLimitExceeded> {
        search::search(self, graph, budget, true)
    }
}

/// Convenience wrapper: minimum cost with the default state cap.
pub fn exact_min_cost(graph: &Cdag, budget: Weight) -> Option<Weight> {
    ExactSolver::default()
        .min_cost(graph, budget)
        .expect("exact search exceeded state cap; use ExactSolver for control")
}

/// Convenience wrapper: an optimal schedule with the default state cap.
pub fn exact_optimal_schedule(graph: &Cdag, budget: Weight) -> Option<(Weight, Schedule)> {
    ExactSolver::default()
        .optimal_schedule(graph, budget)
        .expect("exact search exceeded state cap; use ExactSolver for control")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{validate_schedule, CdagBuilder};

    /// Every solver configuration the tests sweep: default A\* plus each
    /// ablation axis and the full Dijkstra baseline.
    fn all_configs() -> Vec<ExactSolver> {
        vec![
            ExactSolver::default(),
            ExactSolver::default().with_heuristic(Heuristic::None),
            ExactSolver::default().with_heuristic(Heuristic::RemainingWork),
            ExactSolver::default().with_dominance(false),
            ExactSolver::default().with_tighten(false),
            ExactSolver::dijkstra_baseline(),
            ExactSolver {
                batch_size: 1,
                ..ExactSolver::default()
            },
        ]
    }

    /// x, y -> s
    fn add_graph() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        b.edge(x, s);
        b.edge(y, s);
        b.build().unwrap()
    }

    #[test]
    fn single_add_is_lower_bound_tight() {
        let g = add_graph();
        // Tight budget: exactly the parent closure.
        let (cost, sched) = exact_optimal_schedule(&g, 64).unwrap();
        assert_eq!(cost, 16 + 16 + 32);
        let stats = validate_schedule(&g, 64, &sched).unwrap();
        assert_eq!(stats.cost, cost);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let g = add_graph();
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 63).unwrap(), None);
        }
    }

    #[test]
    fn chain_cost_is_ends_only() {
        // x -> a -> b : inputs loaded once, output stored once, interior free.
        let mut bld = CdagBuilder::new();
        let x = bld.node(16, "x");
        let a = bld.node(16, "a");
        let b2 = bld.node(16, "b");
        bld.edge(x, a);
        bld.edge(a, b2);
        let g = bld.build().unwrap();
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 32).unwrap(), Some(32));
        }
    }

    #[test]
    fn tight_budget_forces_spills() {
        // Full binary tree with 4 leaves, uniform weight 1.
        // With 3 red pebbles a binary tree of depth 2 pebbles with no spill:
        // cost = 4 loads + 1 store = 5.
        let mut b = CdagBuilder::new();
        let l: Vec<_> = (0..4).map(|i| b.node(1, format!("l{i}"))).collect();
        let i0 = b.node(1, "i0");
        let i1 = b.node(1, "i1");
        let r = b.node(1, "r");
        b.edge(l[0], i0);
        b.edge(l[1], i0);
        b.edge(l[2], i1);
        b.edge(l[3], i1);
        b.edge(i0, r);
        b.edge(i1, r);
        let g = b.build().unwrap();
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 4).unwrap(), Some(5));
            // Budget 3 = minimum feasible: i0 must be spilled and reloaded.
            assert_eq!(solver.min_cost(&g, 3).unwrap(), Some(7));
            assert_eq!(solver.min_cost(&g, 2).unwrap(), None);
        }
    }

    #[test]
    fn reuse_is_found() {
        // diamond: b feeds both c and d; optimal keeps b red.
        let mut bld = CdagBuilder::new();
        let a = bld.node(1, "a");
        let b = bld.node(1, "b");
        let c = bld.node(1, "c");
        let d = bld.node(1, "d");
        let e = bld.node(1, "e");
        bld.edge(a, c);
        bld.edge(b, c);
        bld.edge(b, d);
        bld.edge(c, e);
        bld.edge(d, e);
        let g = bld.build().unwrap();
        // Budget 3: load a, b; compute c; delete a; compute d; delete b;
        // compute e; store e.  Cost = 2 loads + 1 store = 3.
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 3).unwrap(), Some(3));
        }
    }

    #[test]
    fn schedule_reconstruction_is_valid() {
        let g = add_graph();
        for solver in all_configs() {
            let (cost, sched) = solver.optimal_schedule(&g, 100).unwrap().unwrap();
            let stats = validate_schedule(&g, 100, &sched).unwrap();
            assert_eq!(stats.cost, cost);
        }
    }

    #[test]
    fn state_cap_is_enforced_before_expansion() {
        let g = add_graph();
        // A zero-state cap refuses to expand even the start state…
        let err = ExactSolver::with_max_states(0)
            .min_cost(&g, 64)
            .unwrap_err();
        assert_eq!(err.max_states, 0);
        assert_eq!(err.states_expanded, 0, "cap must trigger before expanding");
        // …and the baseline (which cannot reach the goal in one expansion)
        // reports exactly the cap, never cap+1 as the pre-rewrite solver did.
        let one = ExactSolver {
            max_states: 1,
            ..ExactSolver::dijkstra_baseline()
        };
        let err = one.min_cost(&g, 64).unwrap_err();
        assert_eq!(err.max_states, 1);
        assert_eq!(err.states_expanded, 1);
    }

    #[test]
    fn weighted_asymmetry_changes_strategy() {
        // Two children share a heavy parent: with a tight budget the solver
        // must discover the cheaper spill order.
        let mut bld = CdagBuilder::new();
        let h = bld.node(10, "heavy");
        let l = bld.node(1, "light");
        let c1 = bld.node(1, "c1");
        let c2 = bld.node(1, "c2");
        bld.edge(h, c1);
        bld.edge(l, c1);
        bld.edge(h, c2);
        bld.edge(c1, c2);
        let g = bld.build().unwrap();
        // Budget 12: h + l + c1 = 12 ok; then c2 needs h + c1 + c2 = 12 ok
        // (delete l). Cost = 10 + 1 (loads) + 1 (store c2)... c1 is interior.
        for solver in all_configs() {
            assert_eq!(solver.min_cost(&g, 12).unwrap(), Some(12));
        }
    }

    #[test]
    fn io_scales_apply_to_all_configs() {
        let g = add_graph();
        for solver in all_configs() {
            let solver = solver.with_io_scales(3, 5);
            // 3×(16+16) loads + 5×32 store.
            assert_eq!(solver.min_cost(&g, 64).unwrap(), Some(3 * 32 + 5 * 32));
        }
    }

    #[test]
    fn stats_reflect_pruning() {
        let g = add_graph();
        let fast = ExactSolver::default().solve(&g, 64).unwrap();
        let slow = ExactSolver::dijkstra_baseline().solve(&g, 64).unwrap();
        assert_eq!(fast.cost, slow.cost);
        assert!(fast.stats.expanded <= slow.stats.expanded);
        assert!(fast.stats.root_bound > 0, "A* start state has a bound");
        assert_eq!(slow.stats.root_bound, 0, "Dijkstra has no bound");
        assert!(slow.stats.generated > 0 && fast.stats.generated > 0);
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        // par_map splits batches by PEBBLYN_THREADS; results and stats must
        // not depend on it.  (Thread count is process-wide env, so we only
        // assert repeat determinism here; engine tests cover thread-count
        // invariance of par_map ordering.)
        let g = add_graph();
        let a = ExactSolver::default().solve_with_schedule(&g, 64).unwrap();
        let b = ExactSolver::default().solve_with_schedule(&g, 64).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.schedule.as_ref().map(|s| s.moves().to_vec()),
            b.schedule.as_ref().map(|s| s.moves().to_vec())
        );
    }
}
