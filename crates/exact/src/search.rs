//! Best-first A\* search over packed WRBPG game states.
//!
//! The driver is a batched A\*: it deterministically drains the globally
//! best entries from a sharded open list ([`ShardedWorklist`]), expands the
//! batch in parallel with [`par_map`] (successor generation and heuristic
//! evaluation are pure), and merges distance/parent/queue updates
//! sequentially in batch order.  Merge order is therefore independent of
//! thread count, which keeps costs, schedules, and statistics
//! byte-reproducible.
//!
//! A goal state is only accepted when it is the head of the open list with
//! its recorded distance — i.e. its `f = g` is no worse than every open
//! `f = g + h` — which with an admissible (not necessarily consistent)
//! heuristic certifies optimality; improved paths re-queue their state, so
//! inconsistency costs re-expansions, never correctness.
//!
//! Successor generation runs in one of two modes:
//!
//! * **loose** — the four raw game moves, exactly the PR-2 Dijkstra relation
//!   (kept as the ablation baseline and differential-testing oracle);
//! * **tightened** — macro-moves justified by schedule normalization: every
//!   load can be postponed until just before the compute that consumes it,
//!   every store advanced to just after the compute that creates it, and
//!   every delete deferred until some load/compute is budget-blocked.  Each
//!   successor is then either *fused loads + compute (+ store)* for one
//!   target node, or a single delete when the budget actually blocks
//!   progress.  Both the intermediate load states and all detached
//!   store/delete interleavings vanish from the state space.

use crate::dominance::DominanceStore;
use crate::{ExactSolver, SearchStats, Solution, StateLimitExceeded};
use pebblyn_core::{
    mask_iter, mask_weight, Cdag, FastHashMap, Heuristic, Move, NodeId, Schedule, StateBounds,
    Weight,
};
use pebblyn_engine::par::par_map;
use pebblyn_engine::ShardedWorklist;
use pebblyn_telemetry as telemetry;
use std::hash::{BuildHasher, Hash};

/// Open-list shard count; fixed so expansion order never depends on the
/// host's thread count.
const SHARDS: usize = 8;

/// Packed game snapshot: one red and one blue bitset word, one bit per node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
struct State {
    red: u64,
    blue: u64,
}

/// One search transition; `Fused` covers the tightened macro-moves.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// A raw game move (loose mode, and deletes in tightened mode).
    Single(Move),
    /// Load every node in `loads` (ascending), compute `target`, and
    /// optionally store it immediately.
    Fused {
        loads: u64,
        target: NodeId,
        store: bool,
    },
}

impl Step {
    fn emit(self, moves: &mut Vec<Move>) {
        match self {
            Step::Single(mv) => moves.push(mv),
            Step::Fused {
                loads,
                target,
                store,
            } => {
                for v in mask_iter(loads) {
                    moves.push(Move::Load(v));
                }
                moves.push(Move::Compute(target));
                if store {
                    moves.push(Move::Store(target));
                }
            }
        }
    }
}

/// A successor produced by (parallel) expansion, with its heuristic already
/// evaluated.
struct Succ {
    state: State,
    g: Weight,
    red_weight: Weight,
    h: Weight,
    step: Step,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct QueueItem {
    f: Weight,
    g: Weight,
    state: State,
    /// Weighted red occupancy of `state`, carried incrementally so expansion
    /// never rescans the node set.  A pure function of `state.red`, so
    /// duplicate queue entries always agree.
    red_weight: Weight,
}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap priority: smallest f first, then deepest (largest g),
        // then smallest state word — a total order, so ties are
        // deterministic.
        other
            .f
            .cmp(&self.f)
            .then_with(|| self.g.cmp(&other.g))
            .then_with(|| other.state.cmp(&self.state))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Immutable per-search tables; successor generation reads only this.
struct Ctx {
    n: usize,
    weights: Vec<Weight>,
    pred_masks: Vec<u64>,
    source_mask: u64,
    sink_mask: u64,
    budget: Weight,
    load_scale: Weight,
    store_scale: Weight,
    bounds: StateBounds,
    heuristic: Heuristic,
    tighten: bool,
}

impl Ctx {
    fn h(&self, s: State) -> Weight {
        self.bounds.lower_bound(s.red, s.blue, self.heuristic)
    }

    fn successors(&self, item: &QueueItem) -> Vec<Succ> {
        let mut out = Vec::new();
        if self.tighten {
            self.successors_tight(item, &mut out);
        } else {
            self.successors_loose(item, &mut out);
        }
        out
    }

    fn push(&self, out: &mut Vec<Succ>, state: State, g: Weight, red_weight: Weight, step: Step) {
        let h = self.h(state);
        out.push(Succ {
            state,
            g,
            red_weight,
            h,
            step,
        });
    }

    /// Tightened successor relation (see module docs): fused
    /// loads+compute(+store) macros per target node, plus deletes only when
    /// some otherwise-applicable load/compute is budget-blocked.
    fn successors_tight(&self, item: &QueueItem, out: &mut Vec<Succ>) {
        let s = item.state;
        let mut blocked = false;
        for u in 0..self.n {
            if s.red >> u & 1 != 0 || self.source_mask >> u & 1 != 0 {
                continue;
            }
            let missing = self.pred_masks[u] & !s.red;
            if missing & !s.blue != 0 {
                continue; // some predecessor is neither red nor blue:
                          // deletes cannot unblock this target
            }
            let is_sink = self.sink_mask >> u & 1 != 0;
            let is_blue = s.blue >> u & 1 != 0;
            if is_sink && is_blue {
                continue; // already delivered and has no consumers
            }
            let load_w = mask_weight(missing, &self.weights);
            let w_u = self.weights[u];
            if item.red_weight + load_w + w_u > self.budget {
                blocked = true;
                continue;
            }
            let next_red = s.red | missing | 1 << u;
            let next_rw = item.red_weight + load_w + w_u;
            let g_loads = item.g + self.load_scale * load_w;
            let step = |store| Step::Fused {
                loads: missing,
                target: NodeId(u as u32),
                store,
            };
            // A computed sink is only useful stored, so its unstored variant
            // is dropped; interior nodes get both (a store only pays off if
            // the value is later reloaded, which the search decides).
            if !is_sink {
                self.push(
                    out,
                    State {
                        red: next_red,
                        blue: s.blue,
                    },
                    g_loads,
                    next_rw,
                    step(false),
                );
            }
            if !is_blue {
                self.push(
                    out,
                    State {
                        red: next_red,
                        blue: s.blue | 1 << u,
                    },
                    g_loads + self.store_scale * w_u,
                    next_rw,
                    step(true),
                );
            }
        }
        if blocked {
            for x in mask_iter(s.red) {
                self.push(
                    out,
                    State {
                        red: s.red & !(1 << x.index()),
                        blue: s.blue,
                    },
                    item.g,
                    item.red_weight - self.weights[x.index()],
                    Step::Single(Move::Delete(x)),
                );
            }
        }
    }

    /// The raw four-move relation, byte-for-byte the PR-2 Dijkstra
    /// expansion; kept as the ablation baseline and differential oracle.
    fn successors_loose(&self, item: &QueueItem, out: &mut Vec<Succ>) {
        let s = item.state;
        for v in 0..self.n {
            let id = NodeId(v as u32);
            let w = self.weights[v];
            let has_red = s.red >> v & 1 != 0;
            let has_blue = s.blue >> v & 1 != 0;

            // M1: load — only useful when it changes the label.
            if has_blue && !has_red && item.red_weight + w <= self.budget {
                self.push(
                    out,
                    State {
                        red: s.red | 1 << v,
                        blue: s.blue,
                    },
                    item.g + self.load_scale * w,
                    item.red_weight + w,
                    Step::Single(Move::Load(id)),
                );
            }
            // M2: store — only useful when the node is red-only.
            if has_red && !has_blue {
                self.push(
                    out,
                    State {
                        red: s.red,
                        blue: s.blue | 1 << v,
                    },
                    item.g + self.store_scale * w,
                    item.red_weight,
                    Step::Single(Move::Store(id)),
                );
            }
            // M3: compute — non-source, all preds red, not already red.
            if !has_red
                && self.source_mask >> v & 1 == 0
                && s.red & self.pred_masks[v] == self.pred_masks[v]
                && item.red_weight + w <= self.budget
            {
                self.push(
                    out,
                    State {
                        red: s.red | 1 << v,
                        blue: s.blue,
                    },
                    item.g,
                    item.red_weight + w,
                    Step::Single(Move::Compute(id)),
                );
            }
            // M4: delete.
            if has_red {
                self.push(
                    out,
                    State {
                        red: s.red & !(1 << v),
                        blue: s.blue,
                    },
                    item.g,
                    item.red_weight - w,
                    Step::Single(Move::Delete(id)),
                );
            }
        }
    }
}

fn shard_hint(s: State) -> u64 {
    pebblyn_core::FastBuildHasher::default().hash_one(s)
}

/// Mirror a finished search's [`SearchStats`] into the process telemetry.
///
/// Called exactly once per `search` exit (every `return` path), so the
/// `states_expanded` counter equals the sum of per-solve `stats.expanded`
/// — the invariant the conformance CI job asserts against its report.
fn record_stats(stats: &SearchStats) {
    if !telemetry::enabled() {
        return;
    }
    use telemetry::{Counter, Gauge};
    telemetry::add(Counter::StatesExpanded, stats.expanded as u64);
    telemetry::add(Counter::StatesGenerated, stats.generated as u64);
    telemetry::add(Counter::DominancePruned, stats.dominated as u64);
    telemetry::add(Counter::DedupPruned, stats.deduped as u64);
    telemetry::add(Counter::SearchBatches, stats.batches as u64);
    telemetry::gauge_max(Gauge::FrontierPeak, stats.peak_open as u64);
    telemetry::gauge_max(Gauge::DominanceEntriesPeak, stats.dominance_entries as u64);
}

pub(crate) fn search(
    solver: &ExactSolver,
    graph: &Cdag,
    budget: Weight,
    reconstruct: bool,
) -> Result<Solution, StateLimitExceeded> {
    assert!(
        graph.len() <= 64,
        "exact solver supports at most 64 nodes (got {})",
        graph.len()
    );
    let _span = telemetry::span("exact_search");
    let n = graph.len();
    let weights: Vec<Weight> = (0..n).map(|v| graph.weight(NodeId(v as u32))).collect();
    let pred_masks: Vec<u64> = (0..n)
        .map(|v| {
            graph
                .preds(NodeId(v as u32))
                .iter()
                .fold(0u64, |m, p| m | 1 << p.index())
        })
        .collect();
    let ctx = Ctx {
        n,
        source_mask: graph.sources().iter().fold(0, |m, v| m | 1 << v.index()),
        sink_mask: graph.sinks().iter().fold(0, |m, v| m | 1 << v.index()),
        budget,
        load_scale: solver.load_scale,
        store_scale: solver.store_scale,
        bounds: StateBounds::new(graph, solver.load_scale, solver.store_scale),
        heuristic: solver.heuristic,
        tighten: solver.tighten,
        weights,
        pred_masks,
    };

    let start = State {
        red: 0,
        blue: ctx.source_mask,
    };
    let mut stats = SearchStats {
        root_bound: ctx.h(start),
        ..SearchStats::default()
    };

    let mut dist: FastHashMap<State, Weight> = FastHashMap::default();
    let mut parent: FastHashMap<State, (State, Step)> = FastHashMap::default();
    let mut open: ShardedWorklist<QueueItem> = ShardedWorklist::new(SHARDS);
    dist.insert(start, 0);
    open.push(
        shard_hint(start),
        QueueItem {
            f: stats.root_bound,
            g: 0,
            state: start,
            red_weight: 0,
        },
    );
    let mut dom = DominanceStore::default();
    let batch_cap = solver.batch_size.max(1);
    let mut batch: Vec<QueueItem> = Vec::with_capacity(batch_cap);

    loop {
        batch.clear();
        let mut settled_goal: Option<QueueItem> = None;
        while batch.len() < batch_cap {
            let Some(item) = open.pop_best() else { break };
            if dist.get(&item.state) != Some(&item.g) {
                continue; // stale queue entry
            }
            if item.state.blue & ctx.sink_mask == ctx.sink_mask {
                if batch.is_empty() {
                    // Head of the open list: g ≤ every open f, hence optimal.
                    settled_goal = Some(item);
                } else {
                    // Cannot settle behind this round's batch; re-queue and
                    // let the next round see it as the head.
                    open.push(shard_hint(item.state), item);
                }
                break;
            }
            if stats.expanded == solver.max_states {
                record_stats(&stats);
                return Err(StateLimitExceeded {
                    max_states: solver.max_states,
                    states_expanded: stats.expanded,
                });
            }
            if solver.dominance {
                if dom.dominated(item.state.red, item.state.blue, item.g) {
                    stats.dominated += 1;
                    continue;
                }
                dom.record(item.state.red, item.state.blue, item.g);
            }
            stats.expanded += 1;
            batch.push(item);
        }

        if let Some(goal) = settled_goal {
            stats.frontier_left = open.len();
            let schedule = reconstruct.then(|| {
                let mut steps = Vec::new();
                let mut cur = goal.state;
                while let Some(&(prev, step)) = parent.get(&cur) {
                    steps.push(step);
                    cur = prev;
                }
                steps.reverse();
                let mut moves = Vec::new();
                for step in steps {
                    step.emit(&mut moves);
                }
                Schedule::from_moves(moves)
            });
            record_stats(&stats);
            return Ok(Solution {
                cost: Some(goal.g),
                schedule,
                stats,
            });
        }
        if batch.is_empty() {
            // The open list drained without reaching the goal: infeasible.
            stats.frontier_left = 0;
            record_stats(&stats);
            return Ok(Solution {
                cost: None,
                schedule: None,
                stats,
            });
        }

        stats.batches += 1;
        let succ_lists = par_map(&batch, |item| ctx.successors(item));
        // Sequential merge in batch order: the only mutation point, so the
        // search is deterministic for any thread count.
        for (item, succs) in batch.iter().zip(succ_lists) {
            for succ in succs {
                stats.generated += 1;
                let improves = match dist.get(&succ.state) {
                    Some(&d) => succ.g < d,
                    None => true,
                };
                if !improves {
                    stats.deduped += 1;
                    continue;
                }
                if solver.dominance && dom.dominated(succ.state.red, succ.state.blue, succ.g) {
                    stats.dominated += 1;
                    continue;
                }
                dist.insert(succ.state, succ.g);
                if reconstruct {
                    parent.insert(succ.state, (item.state, succ.step));
                }
                open.push(
                    shard_hint(succ.state),
                    QueueItem {
                        f: succ.g + succ.h,
                        g: succ.g,
                        state: succ.state,
                        red_weight: succ.red_weight,
                    },
                );
            }
        }
        stats.peak_open = stats.peak_open.max(open.len());
        stats.dominance_entries = stats.dominance_entries.max(dom.len());
    }
}
