//! Best-first A\* search over packed WRBPG game states.
//!
//! The driver is a batched A\*: it deterministically drains the globally
//! best entries from a sharded open list ([`ShardedWorklist`]), expands the
//! batch in parallel with [`par_map_hash_distributed`] (successor
//! generation and heuristic evaluation are pure; each frontier item is
//! expanded by the virtual shard that *owns* its state hash, with a
//! deterministic steal rebalance — HDA\*-style hash distribution), and
//! merges distance/parent/queue updates sequentially in batch order.
//! Ownership, rebalance, and merge order are all independent of thread
//! count, which keeps costs, schedules, and statistics byte-reproducible.
//!
//! The state is generic over [`StateMask`]: `u64` is the zero-cost fast
//! path for graphs of ≤ 64 nodes (the monomorphized hot loop is the
//! pre-refactor single-word code), and `Words<N>` lifts the same search to
//! wider graphs.  The search itself never mentions a concrete width.
//!
//! A goal state is only accepted when it is the head of the open list with
//! its recorded distance — i.e. its `f = g` is no worse than every open
//! `f = g + h` — which with an admissible (not necessarily consistent)
//! heuristic certifies optimality; improved paths re-queue their state, so
//! inconsistency costs re-expansions, never correctness.
//!
//! Successor generation runs in one of two modes:
//!
//! * **loose** — the four raw game moves, exactly the PR-2 Dijkstra relation
//!   (kept as the ablation baseline and differential-testing oracle);
//! * **tightened** — macro-moves justified by schedule normalization: every
//!   load can be postponed until just before the compute that consumes it,
//!   every store advanced to just after the compute that creates it, and
//!   every delete deferred until some load/compute is budget-blocked.  Each
//!   successor is then either *fused loads + compute (+ store)* for one
//!   target node, or a single delete when the budget actually blocks
//!   progress.  Both the intermediate load states and all detached
//!   store/delete interleavings vanish from the state space.
//!
//! On top of either relation, **symmetry reduction** (when enabled and no
//! schedule is being reconstructed) rewrites every generated state to its
//! twin-orbit canonical form: within each twin class of the graph
//! ([`pebblyn_core::twin_classes`] — nodes with identical predecessor and
//! successor sets, hence equal weights and mutually interchangeable by
//! automorphism), the members' per-node `(red, blue)` statuses are sorted
//! into a fixed order.  States differing only by which twin holds a pebble
//! collapse to one representative, and because the permutation is a
//! weight-preserving automorphism, reachability, budget feasibility, and
//! optimal completion cost are untouched — only the number of states the
//! search must visit shrinks.
//!
//! The **WL-orbit lever** extends the same argument past exact twins: after
//! the twin sort, the canonicalizer greedily applies every *certified*
//! automorphism generator ([`pebblyn_core::certified_generators`] — WL-class
//! candidates that passed a full edge/weight permutation check), keeping any
//! image that is strictly smaller in state order, to a fixpoint.  Each
//! application is a genuine automorphism, so the rewrite is sound for the
//! same reason the twin sort is; greedy descent need not reach the global
//! orbit minimum, which costs collapse opportunities but never correctness.
//!
//! **Partial expansion** (PEA\*) tames the open list: when a popped state's
//! successors are merged, only those with `f ≤ F` (the parent's own popped
//! f-value) enter the open list; if any admissible successor had `f > F`,
//! the parent re-enqueues once at the *smallest* such f instead of
//! materializing those children.  Re-popping the deferred parent
//! regenerates its successors under the raised threshold, so every child is
//! eventually enqueued at exactly the moment the best-first order needs it
//! — the open-list peak shrinks while costs, tie-breaking, and thread-count
//! determinism are untouched (the deferred entry re-enters the same total
//! order as everything else).

use crate::dominance::DominanceStore;
use crate::{ExactSolver, SearchStats, Solution, StateLimitExceeded};
use pebblyn_core::{
    certified_generators, mask_iter, mask_weight, twin_classes, Cdag, FastHashMap, FastHasher,
    Heuristic, Move, NodeId, Schedule, StateBounds, StateMask, Weight,
};
use pebblyn_engine::par::par_map_hash_distributed;
use pebblyn_engine::ShardedWorklist;
use pebblyn_telemetry as telemetry;
use std::hash::Hasher;

/// Open-list shard count and virtual expansion-owner count; fixed so
/// expansion order never depends on the host's thread count.
const SHARDS: usize = 8;

/// Packed game snapshot: one red and one blue bitset, one bit per node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
struct State<M: StateMask> {
    red: M,
    blue: M,
}

/// One search transition; `Fused` covers the tightened macro-moves.
#[derive(Clone, Copy, Debug)]
enum Step<M: StateMask> {
    /// A raw game move (loose mode, and deletes in tightened mode).
    Single(Move),
    /// Load every node in `loads` (ascending), compute `target`, and
    /// optionally store it immediately.
    Fused {
        loads: M,
        target: NodeId,
        store: bool,
    },
}

impl<M: StateMask> Step<M> {
    fn emit(self, moves: &mut Vec<Move>) {
        match self {
            Step::Single(mv) => moves.push(mv),
            Step::Fused {
                loads,
                target,
                store,
            } => {
                for v in mask_iter(loads) {
                    moves.push(Move::Load(v));
                }
                moves.push(Move::Compute(target));
                if store {
                    moves.push(Move::Store(target));
                }
            }
        }
    }
}

/// A successor produced by (parallel) expansion, with its heuristic already
/// evaluated and its state already in twin-orbit canonical form.
struct Succ<M: StateMask> {
    state: State<M>,
    g: Weight,
    red_weight: Weight,
    h: Weight,
    step: Step<M>,
    /// Whether canonicalization rewrote the state (a symmetry prune).
    canonized: bool,
}

#[derive(Clone, Copy, Eq, Debug)]
struct QueueItem<M: StateMask> {
    f: Weight,
    g: Weight,
    state: State<M>,
    /// Weighted red occupancy of `state`, carried incrementally so expansion
    /// never rescans the node set.  A pure function of `state.red`, so
    /// duplicate queue entries always agree.
    red_weight: Weight,
    /// Partial-expansion re-enqueue: this entry's `f` is the smallest
    /// f-value among successors the last expansion declined to materialize,
    /// not `g + h(state)`.  Counted as a re-expansion when popped.
    deferred: bool,
}

impl<M: StateMask> PartialEq for QueueItem<M> {
    fn eq(&self, other: &Self) -> bool {
        // Must agree with `Ord` (which ignores the deferred flag and the
        // derived `red_weight`), or heap/sort invariants break.
        self.f == other.f && self.g == other.g && self.state == other.state
    }
}

impl<M: StateMask> Ord for QueueItem<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap priority: smallest f first, then deepest (largest g),
        // then smallest state value — a total order, so ties are
        // deterministic.  `M`'s Ord matches u64's numeric order on shared
        // widths, so the tie-break (and hence the whole expansion order) is
        // identical between the u64 fast path and a wider mask on the same
        // graph.
        other
            .f
            .cmp(&self.f)
            .then_with(|| self.g.cmp(&other.g))
            .then_with(|| other.state.cmp(&self.state))
    }
}

impl<M: StateMask> PartialOrd for QueueItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Immutable per-search tables; successor generation reads only this.
struct Ctx<M: StateMask> {
    n: usize,
    weights: Vec<Weight>,
    pred_masks: Vec<M>,
    source_mask: M,
    sink_mask: M,
    budget: Weight,
    load_scale: Weight,
    store_scale: Weight,
    bounds: StateBounds<M>,
    heuristic: Heuristic,
    tighten: bool,
    /// Twin classes (size ≥ 2, members ascending) used for state
    /// canonicalization; empty when symmetry reduction is off.
    classes: Vec<Vec<u32>>,
    /// Certified automorphism generators (full node permutations) applied
    /// greedily after the twin sort; empty when the WL lever is off.
    generators: Vec<Vec<u32>>,
    /// `ceil(n / 64)`: how many mask words the graph actually occupies.
    /// Hashing exactly these words keeps shard routing width-independent.
    hash_words: usize,
}

impl<M: StateMask> Ctx<M> {
    fn h(&self, s: State<M>) -> Weight {
        self.bounds.lower_bound(s.red, s.blue, self.heuristic)
    }

    /// Rewrite `s` to its twin-orbit canonical representative: within each
    /// twin class, sort the members' 2-bit `(red, blue)` statuses into
    /// descending order along ascending member index.  The rewrite is a
    /// permutation of pebbles inside automorphism orbits of equal-weight
    /// nodes, so it preserves red weight, budget feasibility, goal
    /// membership, and optimal completion cost.
    fn canon(&self, s: State<M>) -> (State<M>, bool) {
        let mut red = s.red;
        let mut blue = s.blue;
        let mut changed = false;
        for class in &self.classes {
            let mut count = [0usize; 4];
            for &v in class {
                let v = v as usize;
                count[usize::from(red.get(v)) << 1 | usize::from(blue.get(v))] += 1;
            }
            let mut members = class.iter();
            for status in (0..4usize).rev() {
                for _ in 0..count[status] {
                    let v = *members.next().expect("statuses == members") as usize;
                    let r = status & 2 != 0;
                    let b = status & 1 != 0;
                    if red.get(v) != r || blue.get(v) != b {
                        changed = true;
                    }
                    red = if r { red.set(v) } else { red.clear(v) };
                    blue = if b { blue.set(v) } else { blue.clear(v) };
                }
            }
        }
        let mut cur = State { red, blue };
        // WL-orbit lever: greedy descent under the certified generators.
        // Every application is a weight-preserving automorphism, so each
        // image is cost-equivalent; keeping only strictly smaller images
        // makes the loop terminate (finite strictly-decreasing chain) and
        // keeps canon a pure function of its input.
        if !self.generators.is_empty() {
            loop {
                let mut improved = false;
                for perm in &self.generators {
                    let img = apply_perm(perm, cur, self.n);
                    if img < cur {
                        cur = img;
                        improved = true;
                        changed = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        (cur, changed)
    }

    fn successors(&self, item: &QueueItem<M>) -> Vec<Succ<M>> {
        let mut out = Vec::new();
        if self.tighten {
            self.successors_tight(item, &mut out);
        } else {
            self.successors_loose(item, &mut out);
        }
        out
    }

    fn push(
        &self,
        out: &mut Vec<Succ<M>>,
        state: State<M>,
        g: Weight,
        red_weight: Weight,
        step: Step<M>,
    ) {
        let (state, canonized) = self.canon(state);
        let h = self.h(state);
        out.push(Succ {
            state,
            g,
            red_weight,
            h,
            step,
            canonized,
        });
    }

    /// Tightened successor relation (see module docs): fused
    /// loads+compute(+store) macros per target node, plus deletes only when
    /// some otherwise-applicable load/compute is budget-blocked.
    fn successors_tight(&self, item: &QueueItem<M>, out: &mut Vec<Succ<M>>) {
        let s = item.state;
        let mut blocked = false;
        for u in 0..self.n {
            if s.red.get(u) || self.source_mask.get(u) {
                continue;
            }
            let missing = self.pred_masks[u] & !s.red;
            if !(missing & !s.blue).is_empty() {
                continue; // some predecessor is neither red nor blue:
                          // deletes cannot unblock this target
            }
            let is_sink = self.sink_mask.get(u);
            let is_blue = s.blue.get(u);
            if is_sink && is_blue {
                continue; // already delivered and has no consumers
            }
            let load_w = mask_weight(missing, &self.weights);
            let w_u = self.weights[u];
            if item.red_weight + load_w + w_u > self.budget {
                blocked = true;
                continue;
            }
            let next_red = s.red | missing | M::bit(u);
            let next_rw = item.red_weight + load_w + w_u;
            let g_loads = item.g + self.load_scale * load_w;
            let step = |store| Step::Fused {
                loads: missing,
                target: NodeId(u as u32),
                store,
            };
            // A computed sink is only useful stored, so its unstored variant
            // is dropped; interior nodes get both (a store only pays off if
            // the value is later reloaded, which the search decides).
            if !is_sink {
                self.push(
                    out,
                    State {
                        red: next_red,
                        blue: s.blue,
                    },
                    g_loads,
                    next_rw,
                    step(false),
                );
            }
            if !is_blue {
                self.push(
                    out,
                    State {
                        red: next_red,
                        blue: s.blue.set(u),
                    },
                    g_loads + self.store_scale * w_u,
                    next_rw,
                    step(true),
                );
            }
        }
        if blocked {
            for x in mask_iter(s.red) {
                self.push(
                    out,
                    State {
                        red: s.red.clear(x.index()),
                        blue: s.blue,
                    },
                    item.g,
                    item.red_weight - self.weights[x.index()],
                    Step::Single(Move::Delete(x)),
                );
            }
        }
    }

    /// The raw four-move relation, byte-for-byte the PR-2 Dijkstra
    /// expansion; kept as the ablation baseline and differential oracle.
    fn successors_loose(&self, item: &QueueItem<M>, out: &mut Vec<Succ<M>>) {
        let s = item.state;
        for v in 0..self.n {
            let id = NodeId(v as u32);
            let w = self.weights[v];
            let has_red = s.red.get(v);
            let has_blue = s.blue.get(v);

            // M1: load — only useful when it changes the label.
            if has_blue && !has_red && item.red_weight + w <= self.budget {
                self.push(
                    out,
                    State {
                        red: s.red.set(v),
                        blue: s.blue,
                    },
                    item.g + self.load_scale * w,
                    item.red_weight + w,
                    Step::Single(Move::Load(id)),
                );
            }
            // M2: store — only useful when the node is red-only.
            if has_red && !has_blue {
                self.push(
                    out,
                    State {
                        red: s.red,
                        blue: s.blue.set(v),
                    },
                    item.g + self.store_scale * w,
                    item.red_weight,
                    Step::Single(Move::Store(id)),
                );
            }
            // M3: compute — non-source, all preds red, not already red.
            if !has_red
                && !self.source_mask.get(v)
                && s.red.contains_all(self.pred_masks[v])
                && item.red_weight + w <= self.budget
            {
                self.push(
                    out,
                    State {
                        red: s.red.set(v),
                        blue: s.blue,
                    },
                    item.g,
                    item.red_weight + w,
                    Step::Single(Move::Compute(id)),
                );
            }
            // M4: delete.
            if has_red {
                self.push(
                    out,
                    State {
                        red: s.red.clear(v),
                        blue: s.blue,
                    },
                    item.g,
                    item.red_weight - w,
                    Step::Single(Move::Delete(id)),
                );
            }
        }
    }
}

/// Image of a packed state under a node permutation: pebbles move with
/// their nodes (`perm[v]` is `v`'s image).
fn apply_perm<M: StateMask>(perm: &[u32], s: State<M>, n: usize) -> State<M> {
    let mut red = M::empty();
    let mut blue = M::empty();
    for (v, &img) in perm.iter().enumerate().take(n) {
        let t = img as usize;
        if s.red.get(v) {
            red = red.set(t);
        }
        if s.blue.get(v) {
            blue = blue.set(t);
        }
    }
    State { red, blue }
}

/// Width-independent shard/owner hint: hash exactly the words the graph
/// occupies, so a ≤ 64-node graph routes identically whether its states are
/// `u64` or `Words<N>` — the precondition for the mask-width equivalence
/// guarantee.
fn shard_hint<M: StateMask>(s: &State<M>, hash_words: usize) -> u64 {
    let mut h = FastHasher::default();
    for i in 0..hash_words {
        h.write_u64(s.red.word(i));
        h.write_u64(s.blue.word(i));
    }
    h.finish()
}

/// Mirror a finished search's [`SearchStats`] into the process telemetry.
///
/// Called exactly once per `search` exit (every `return` path), so the
/// `states_expanded` counter equals the sum of per-solve `stats.expanded`
/// — the invariant the conformance CI job asserts against its report.
fn record_stats(stats: &SearchStats) {
    if !telemetry::enabled() {
        return;
    }
    use telemetry::{Counter, Gauge};
    telemetry::add(Counter::StatesExpanded, stats.expanded as u64);
    telemetry::add(Counter::StatesGenerated, stats.generated as u64);
    telemetry::add(Counter::DominancePruned, stats.dominated as u64);
    telemetry::add(Counter::DedupPruned, stats.deduped as u64);
    telemetry::add(Counter::SymmetryPruned, stats.symmetry_pruned as u64);
    telemetry::add(Counter::SearchBatches, stats.batches as u64);
    telemetry::add(Counter::FrontierSteals, stats.frontier_steals);
    telemetry::add(Counter::ReExpansions, stats.re_expanded as u64);
    telemetry::gauge_max(Gauge::OpenListPeak, stats.peak_open as u64);
    telemetry::gauge_max(Gauge::DominanceEntriesPeak, stats.dominance_entries as u64);
    telemetry::gauge_max(Gauge::MaskWords, stats.mask_words as u64);
}

pub(crate) fn search<M: StateMask>(
    solver: &ExactSolver,
    graph: &Cdag,
    budget: Weight,
    reconstruct: bool,
) -> Result<Solution, StateLimitExceeded> {
    assert!(
        graph.len() <= M::BITS,
        "state mask of {} bits cannot represent {} nodes (checked by the solver entry points)",
        M::BITS,
        graph.len()
    );
    let _span = telemetry::span("exact_search");
    let n = graph.len();
    let weights: Vec<Weight> = (0..n).map(|v| graph.weight(NodeId(v as u32))).collect();
    let pred_masks: Vec<M> = (0..n)
        .map(|v| pebblyn_core::bounds::nodes_to_mask(graph.preds(NodeId(v as u32))))
        .collect();
    // Symmetry reduction rewrites states across automorphism orbits, which
    // preserves costs but not the parent pointers a concrete move sequence
    // needs — so it is disabled whenever a schedule is being reconstructed.
    let classes = if solver.symmetry && !reconstruct {
        twin_classes(graph)
    } else {
        Vec::new()
    };
    // The WL-orbit lever rides on the same soundness argument as the twin
    // sort, and the same reconstruction caveat; it is additionally gated by
    // its own flag so the ablation grid can isolate it.
    let generators = if solver.symmetry && solver.wl_symmetry && !reconstruct {
        certified_generators(graph)
    } else {
        Vec::new()
    };
    // The landmark/PDB tier needs the budget at construction time (landmarks
    // and the abstract game are budget-relative); the other tiers keep the
    // budget-free constructor so their bounds stay instance-cacheable.
    let bounds = if solver.heuristic == Heuristic::LandmarkPdb {
        StateBounds::with_budget(graph, solver.load_scale, solver.store_scale, budget)
    } else {
        StateBounds::new(graph, solver.load_scale, solver.store_scale)
    };
    let ctx = Ctx {
        n,
        source_mask: pebblyn_core::bounds::nodes_to_mask::<M>(graph.sources()),
        sink_mask: pebblyn_core::bounds::nodes_to_mask::<M>(graph.sinks()),
        budget,
        load_scale: solver.load_scale,
        store_scale: solver.store_scale,
        bounds,
        heuristic: solver.heuristic,
        tighten: solver.tighten,
        weights,
        pred_masks,
        classes,
        generators,
        hash_words: n.div_ceil(64).max(1),
    };

    let (start, _) = ctx.canon(State {
        red: M::empty(),
        blue: ctx.source_mask,
    });
    let mut stats = SearchStats {
        root_bound: ctx.h(start),
        mask_words: M::WORDS,
        ..SearchStats::default()
    };

    let mut dist: FastHashMap<State<M>, Weight> = FastHashMap::default();
    let mut parent: FastHashMap<State<M>, (State<M>, Step<M>)> = FastHashMap::default();
    let mut open: ShardedWorklist<QueueItem<M>> = ShardedWorklist::new(SHARDS);
    dist.insert(start, 0);
    open.push(
        shard_hint(&start, ctx.hash_words),
        QueueItem {
            f: stats.root_bound,
            g: 0,
            state: start,
            red_weight: 0,
            deferred: false,
        },
    );
    let mut dom = DominanceStore::default();
    let batch_cap = solver.batch_size.max(1);
    let mut batch: Vec<QueueItem<M>> = Vec::with_capacity(batch_cap);
    let mut hints: Vec<u64> = Vec::with_capacity(batch_cap);

    loop {
        batch.clear();
        let mut settled_goal: Option<QueueItem<M>> = None;
        while batch.len() < batch_cap {
            let Some(item) = open.pop_best() else { break };
            if dist.get(&item.state) != Some(&item.g) {
                continue; // stale queue entry
            }
            if item.state.blue.contains_all(ctx.sink_mask) {
                if batch.is_empty() {
                    // Head of the open list: g ≤ every open f, hence optimal.
                    settled_goal = Some(item);
                } else {
                    // Cannot settle behind this round's batch; re-queue and
                    // let the next round see it as the head.
                    open.push(shard_hint(&item.state, ctx.hash_words), item);
                }
                break;
            }
            if stats.expanded == solver.max_states {
                record_stats(&stats);
                return Err(StateLimitExceeded {
                    max_states: solver.max_states,
                    states_expanded: stats.expanded,
                });
            }
            if solver.dominance {
                if dom.dominated(item.state.red, item.state.blue, item.g) {
                    stats.dominated += 1;
                    continue;
                }
                dom.record(item.state.red, item.state.blue, item.g);
            }
            stats.expanded += 1;
            if item.deferred {
                stats.re_expanded += 1;
            }
            batch.push(item);
        }

        if let Some(goal) = settled_goal {
            stats.frontier_left = open.len();
            let schedule = reconstruct.then(|| {
                let mut steps = Vec::new();
                let mut cur = goal.state;
                while let Some(&(prev, step)) = parent.get(&cur) {
                    steps.push(step);
                    cur = prev;
                }
                steps.reverse();
                let mut moves = Vec::new();
                for step in steps {
                    step.emit(&mut moves);
                }
                Schedule::from_moves(moves)
            });
            record_stats(&stats);
            return Ok(Solution {
                cost: Some(goal.g),
                schedule,
                stats,
            });
        }
        if batch.is_empty() {
            // The open list drained without reaching the goal: infeasible.
            stats.frontier_left = 0;
            record_stats(&stats);
            return Ok(Solution {
                cost: None,
                schedule: None,
                stats,
            });
        }

        stats.batches += 1;
        hints.clear();
        hints.extend(
            batch
                .iter()
                .map(|item| shard_hint(&item.state, ctx.hash_words)),
        );
        let (succ_lists, steals) =
            par_map_hash_distributed(&batch, &hints, SHARDS, |item| ctx.successors(item));
        stats.frontier_steals += steals;
        // Sequential merge in batch order: the only mutation point, so the
        // search is deterministic for any thread count.
        for (item, succs) in batch.iter().zip(succ_lists) {
            // Partial expansion: only successors at or below the parent's
            // own popped f-value materialize now; the smallest deferred f
            // (over successors that would otherwise have been enqueued)
            // becomes the parent's re-enqueue priority.  Filters only ever
            // tighten over time — `dist` entries can only shrink and the
            // dominance antichain only grows — so a successor filtered out
            // here would also be filtered at re-expansion, and skipping it
            // in `next_f` loses nothing.
            let mut next_f: Option<Weight> = None;
            for succ in succs {
                stats.generated += 1;
                if succ.canonized {
                    stats.symmetry_pruned += 1;
                }
                let improves = match dist.get(&succ.state) {
                    Some(&d) => succ.g < d,
                    None => true,
                };
                if !improves {
                    stats.deduped += 1;
                    continue;
                }
                if solver.dominance && dom.dominated(succ.state.red, succ.state.blue, succ.g) {
                    stats.dominated += 1;
                    continue;
                }
                let f = succ.g + succ.h;
                if solver.partial_expansion && f > item.f {
                    next_f = Some(next_f.map_or(f, |best: Weight| best.min(f)));
                    continue;
                }
                dist.insert(succ.state, succ.g);
                if reconstruct {
                    parent.insert(succ.state, (item.state, succ.step));
                }
                open.push(
                    shard_hint(&succ.state, ctx.hash_words),
                    QueueItem {
                        f,
                        g: succ.g,
                        state: succ.state,
                        red_weight: succ.red_weight,
                        deferred: false,
                    },
                );
            }
            if let Some(f) = next_f {
                // Strictly increasing re-enqueue f (`f > item.f`), so a
                // state re-expands at most once per distinct successor
                // f-value and the search terminates.
                open.push(
                    shard_hint(&item.state, ctx.hash_words),
                    QueueItem {
                        f,
                        g: item.g,
                        state: item.state,
                        red_weight: item.red_weight,
                        deferred: true,
                    },
                );
            }
        }
        stats.peak_open = stats.peak_open.max(open.len());
        stats.dominance_entries = stats.dominance_entries.max(dom.len());
    }
}
