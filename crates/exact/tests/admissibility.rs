//! Admissibility of the A\* lower bounds on the pinned 7-node kary witness.
//!
//! The witness is the shrunk counterexample the conformance fuzzer found
//! (seed 3): a chain 8→6→1→6 into the sink plus a branch 8→1, whose exact
//! optimum at the minimum feasible budget (14) is 17 while the contiguous
//! kary DP reports 19.  It exercises budget-forced eviction, interleaved
//! subtree evaluation, and reloads — exactly the behaviours a sloppy bound
//! would overcharge for.
//!
//! The test replays the optimal schedule move by move and asserts, at every
//! prefix state, `h(state) ≤ optimal_cost − cost_spent_so_far` for every
//! heuristic tier.  Since A\* visits only states on or off the optimal
//! path with `g + h ≤ C*` when `h` is admissible, overcharging any state on
//! the optimal trajectory would make the search return a wrong (higher)
//! cost; this witness pins the bound on a graph where that actually bites.

use pebblyn_core::{Cdag, CdagBuilder, Heuristic, Move, StateBounds, Weight};
use pebblyn_exact::ExactSolver;

/// The conformance fuzzer's 7-node witness (see `schedulers::kary` tests).
fn fuzzer_witness() -> Cdag {
    let mut b = CdagBuilder::new();
    let root = b.node(1, "root");
    let t1 = b.node(6, "t1");
    let t2 = b.node(1, "t2");
    let leaf3 = b.node(8, "leaf3");
    let t4 = b.node(1, "t4");
    let t6 = b.node(6, "t6");
    let t7 = b.node(8, "t7");
    b.edge(t1, root);
    b.edge(t2, root);
    b.edge(t4, t1);
    b.edge(leaf3, t2);
    b.edge(t6, t4);
    b.edge(t7, t6);
    b.build().unwrap()
}

#[test]
fn heuristics_are_admissible_along_the_optimal_trajectory() {
    let g = fuzzer_witness();
    let budget = pebblyn_core::min_feasible_budget(&g);
    assert_eq!(budget, 14);

    let solver = ExactSolver::default();
    let (cost, schedule) = solver
        .optimal_schedule(&g, budget)
        .unwrap()
        .expect("witness is feasible at its minimum budget");
    assert_eq!(cost, 17, "pinned optimum of the kary fuzzer witness");

    let heuristics = [
        Heuristic::None,
        Heuristic::RemainingWork,
        Heuristic::ForcedReload,
        Heuristic::LandmarkPdb,
    ];
    // `with_budget` builds the landmark set and the pattern database the
    // landmark-pdb tier needs; the other tiers read the same tables.
    let bounds: StateBounds = StateBounds::with_budget(&g, 1, 1, budget);

    // Replay the optimal schedule, checking every prefix state.
    let mut red: u64 = 0;
    let mut blue: u64 = 0;
    for &v in g.sources() {
        blue |= 1 << v.index();
    }
    let mut spent: Weight = 0;

    let check = |red: u64, blue: u64, spent: Weight, step: usize| {
        for h in heuristics {
            let lb = bounds.lower_bound(red, blue, h);
            assert!(
                lb <= cost - spent,
                "{} overcharges after move {step}: h = {lb} > {} = C* - g",
                h.name(),
                cost - spent,
            );
        }
    };

    check(red, blue, spent, 0);
    for (i, mv) in schedule.iter().enumerate() {
        let bit = 1u64 << mv.node().index();
        let w = g.weight(mv.node());
        match mv {
            Move::Load(_) => {
                red |= bit;
                spent += w;
            }
            Move::Store(_) => {
                blue |= bit;
                spent += w;
            }
            Move::Compute(_) => red |= bit,
            Move::Delete(_) => red &= !bit,
        }
        check(red, blue, spent, i + 1);
    }
    assert_eq!(spent, cost, "replayed cost matches the solver's claim");

    // The bounds are ordered: landmark-pdb dominates forced-reload
    // dominates remaining-work dominates the trivial bound, at the start
    // state too.
    let mut src = 0u64;
    for &v in g.sources() {
        src |= 1 << v.index();
    }
    let rw = bounds.lower_bound(0, src, Heuristic::RemainingWork);
    let fr = bounds.lower_bound(0, src, Heuristic::ForcedReload);
    let lp = bounds.lower_bound(0, src, Heuristic::LandmarkPdb);
    assert!(lp >= fr && fr >= rw && rw > 0);
}
