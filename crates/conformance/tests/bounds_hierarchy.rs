//! The lower-bound tiers form a dominance hierarchy *pointwise*:
//! `landmark-pdb ≥ forced-reload ≥ remaining-work` at every packed state,
//! on every generated graph.  Each tier is separately proven admissible
//! (see `crates/exact/tests/admissibility.rs` for the optimal-path pin),
//! so the hierarchy means each tier is a strictly-no-worse guide — more
//! pruning, never a different optimum.
//!
//! The second property pins the WL-orbit lever: canonicalizing states
//! through certified automorphism generators must never change the solve
//! cost relative to running with symmetry reduction off entirely.

use pebblyn_conformance::{generate, oracle::budget_probes};
use pebblyn_core::{min_feasible_budget, Heuristic, StateBounds};
use pebblyn_exact::ExactSolver;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bound_tiers_dominate_pointwise(
        seed in 0u64..1024,
        index in 0u64..256,
        state_seed in 0u64..u64::MAX,
    ) {
        let case = generate(seed, index);
        let g = &case.graph;
        prop_assume!(g.len() <= 64);

        let budget = min_feasible_budget(g);
        let bounds: StateBounds = StateBounds::with_budget(g, 1, 1, budget);
        let node_mask = if g.len() == 64 { u64::MAX } else { (1u64 << g.len()) - 1 };

        // A handful of pseudo-random packed states per case (not only
        // reachable ones: the dominance chain holds by construction at
        // *every* state, which is the stronger and easier-to-pin claim).
        let mut x = state_seed | 1;
        for _ in 0..8 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let red = x & node_mask;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let blue = x & node_mask;
            let rw = bounds.lower_bound(red, blue, Heuristic::RemainingWork);
            let fr = bounds.lower_bound(red, blue, Heuristic::ForcedReload);
            let lp = bounds.lower_bound(red, blue, Heuristic::LandmarkPdb);
            prop_assert!(
                fr >= rw,
                "{}: forced-reload {} < remaining-work {} at red={red:#x} blue={blue:#x}",
                case.label(), fr, rw
            );
            prop_assert!(
                lp >= fr,
                "{}: landmark-pdb {} < forced-reload {} at red={red:#x} blue={blue:#x}",
                case.label(), lp, fr
            );
        }
    }

    #[test]
    fn wl_orbit_canonicalization_preserves_solve_cost(
        seed in 0u64..512,
        index in 0u64..256,
    ) {
        let case = generate(seed, index);
        let g = &case.graph;
        prop_assume!(g.len() <= 10);

        let with_wl = ExactSolver::default(); // symmetry + WL orbits on
        let plain = ExactSolver::default().with_symmetry(false);
        for b in budget_probes(g) {
            let canonical = with_wl.min_cost(g, b).expect("within cap on <=10 nodes");
            let reference = plain.min_cost(g, b).expect("within cap on <=10 nodes");
            prop_assert_eq!(
                canonical, reference,
                "{}: WL-orbit canonicalization changed the optimum at budget {}",
                case.label(), b
            );
        }
    }
}
