//! Mask-width equivalence and symmetry invariance, property-tested over
//! the conformance generator's case families.
//!
//! The exact search is generic over its state-mask width ([`StateMask`]):
//! `u64` for ≤ 64-node graphs, `Words<N>` beyond.  The refactor's contract
//! is stronger than "same optimum" — because tie-breaking, shard routing,
//! and orbit canonicalization are all width-independent by construction,
//! a graph solved at *any* sufficient width must take the **identical
//! search trajectory**: same costs, same statistics, byte-identical
//! reconstructed schedules.  These tests pin that contract on the real
//! case distribution (chains, in-trees, layered DAGs, reconvergent
//! meshes, up to the 40-node INVARIANT ceiling — all of which fit every
//! width under test).
//!
//! Separately, twin-orbit symmetry reduction may only ever change *how
//! much* the solver explores, never what it concludes: costs (including
//! infeasibility verdicts) must match with the lever on and off.

use pebblyn_conformance::{generate, oracle::budget_probes};
use pebblyn_exact::{ExactSolver, Words};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wider_masks_take_the_identical_search_trajectory(
        seed in 0u64..1024,
        index in 0u64..256,
    ) {
        let case = generate(seed, index);
        let g = &case.graph;
        prop_assume!(g.len() <= 12); // exhaustible fast at every width

        let solver = ExactSolver::default();
        for b in budget_probes(g) {
            let narrow = solver
                .solve_with_schedule_and_mask::<u64>(g, b)
                .expect("u64 within cap");
            let w2 = solver
                .solve_with_schedule_and_mask::<Words<2>>(g, b)
                .expect("Words<2> within cap");
            let w4 = solver
                .solve_with_schedule_and_mask::<Words<4>>(g, b)
                .expect("Words<4> within cap");
            for (label, wide) in [("Words<2>", &w2), ("Words<4>", &w4)] {
                prop_assert_eq!(
                    narrow.cost, wide.cost,
                    "{}: {} cost differs from u64 at budget {}",
                    case.label(), label, b
                );
                let moves = |s: &pebblyn_exact::Solution| {
                    s.schedule.as_ref().map(|s| s.moves().to_vec())
                };
                prop_assert_eq!(
                    moves(&narrow), moves(wide),
                    "{}: {} schedule differs from u64 at budget {} \
                     (width must be invisible to the trajectory)",
                    case.label(), label, b
                );
                // Same trajectory ⇒ same counters, except the words gauge.
                prop_assert_eq!(narrow.stats.expanded, wide.stats.expanded);
                prop_assert_eq!(narrow.stats.generated, wide.stats.generated);
                prop_assert_eq!(narrow.stats.deduped, wide.stats.deduped);
                prop_assert_eq!(narrow.stats.dominated, wide.stats.dominated);
                prop_assert_eq!(narrow.stats.batches, wide.stats.batches);
                prop_assert_eq!(
                    narrow.stats.frontier_steals, wide.stats.frontier_steals,
                    "{}: steal accounting must be width-independent",
                    case.label()
                );
            }
            prop_assert_eq!(narrow.stats.mask_words, 1);
            prop_assert_eq!(w2.stats.mask_words, 2);
            prop_assert_eq!(w4.stats.mask_words, 4);
        }
    }

    #[test]
    fn symmetry_reduction_never_changes_any_verdict(
        seed in 0u64..1024,
        index in 0u64..256,
    ) {
        let case = generate(seed, index);
        let g = &case.graph;
        prop_assume!(g.len() <= 10);

        let on = ExactSolver::default();
        let off = ExactSolver::default().with_symmetry(false);
        for b in budget_probes(g) {
            let with = on.solve(g, b).expect("within cap");
            let without = off.solve(g, b).expect("within cap");
            prop_assert_eq!(
                with.cost, without.cost,
                "{}: symmetry reduction changed the optimum at budget {}",
                case.label(), b
            );
            prop_assert!(
                with.stats.expanded <= without.stats.expanded,
                "{}: canonicalization may only shrink the search \
                 ({} vs {} expanded)",
                case.label(), with.stats.expanded, without.stats.expanded
            );
        }
    }
}
