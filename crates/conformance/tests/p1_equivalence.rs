//! Satellite of the multiprocessor redesign: a `p = 1` machine is not
//! merely *equivalent* to the scalar-budget game, it is **byte-identical**
//! — every registered scheduler asked to play on
//! `MachineSpec::uniprocessor(b)` must produce exactly the move stream and
//! cost the pre-redesign scalar path produces.  The executor guarantees
//! this by construction (uniprocessor requests route through the old code
//! path, and the default `schedule_multi` wraps `schedule`); this test
//! pins the guarantee empirically across the seeded conformance corpus
//! and the structured workload families, so any future scheduler that
//! overrides `schedule_multi` with a divergent `p = 1` special case is
//! caught here before the MULTI conformance regime ever runs.

use pebblyn_conformance::generate;
use pebblyn_core::{min_feasible_budget, MachineSpec, MultiMove, ScheduleRequest};
use pebblyn_graphs::{AnyGraph, WeightScheme, Workload};
use pebblyn_schedulers::{api, ScheduleError};

/// Budgets worth probing: the feasibility threshold, a mid-slack point,
/// and ample memory.
fn probe_budgets(g: &AnyGraph) -> Vec<u64> {
    let minb = min_feasible_budget(g.cdag());
    let total = g.cdag().total_weight();
    let mut bs = vec![minb, minb + (total - minb.min(total)) / 2, total];
    bs.dedup();
    bs
}

/// Every corpus graph × registered scheduler × probe budget: the trait's
/// multi entry point under a uniprocessor spec projects to exactly the
/// scalar schedule, and the request executor returns the same answer for
/// `ScheduleRequest::new(g, b, ..)` and
/// `ScheduleRequest::new(g, MachineSpec::uniprocessor(b), ..)`.
fn assert_p1_identity(g: &AnyGraph) {
    for sched in api::registry() {
        if !sched.supports(g) {
            continue;
        }
        for b in probe_budgets(g) {
            let spec = MachineSpec::uniprocessor(b);
            let scalar = match sched.schedule(g, b) {
                Ok(s) => s,
                Err(ScheduleError::InfeasibleBudget { .. }) => {
                    // The multi path must decline the same budgets.
                    assert!(
                        sched.schedule_multi(g, &spec).is_err(),
                        "{}: multi path accepts budget {b} the scalar path declines on {}",
                        sched.name(),
                        g.name()
                    );
                    continue;
                }
                Err(e) => panic!("{}: scalar path failed on {}: {e}", sched.name(), g.name()),
            };
            let multi = sched
                .schedule_multi(g, &spec)
                .unwrap_or_else(|e| panic!("{}: multi path failed: {e}", sched.name()));

            // Byte identity: every multi move is the scalar move on
            // processor 0, in the same order.
            assert_eq!(
                multi.len(),
                scalar.len(),
                "{} on {}",
                sched.name(),
                g.name()
            );
            for (mm, sm) in multi.iter().zip(scalar.stream().iter()) {
                assert_eq!(
                    mm,
                    MultiMove::from_single(sm, 0),
                    "{} on {} at budget {b}: move streams diverge",
                    sched.name(),
                    g.name()
                );
            }

            // The executor agrees with itself across the two request forms.
            let scalar_req = ScheduleRequest::new(g, b, sched.name());
            let multi_req = ScheduleRequest::new(g, spec.clone(), sched.name());
            let a = api::execute_with(*sched, &scalar_req).expect("scalar request succeeds");
            let m = api::execute_with(*sched, &multi_req).expect("uniprocessor request succeeds");
            assert_eq!(a.cost(), m.cost(), "{} on {}", sched.name(), g.name());
            assert_eq!(
                a.schedule().map(|s| s.moves()),
                m.schedule().map(|s| s.moves()),
                "{} on {} at budget {b}: executor answers diverge",
                sched.name(),
                g.name()
            );
            assert_eq!(m.makespan(), None, "uniprocessor answers carry no makespan");
            assert_eq!(
                m.comm_cost(),
                None,
                "uniprocessor answers carry no comm cost"
            );
        }
    }
}

#[test]
fn seeded_corpus_p1_machines_are_byte_identical_to_scalar_budgets() {
    for idx in 0..24 {
        let case = generate(3, idx);
        let g = AnyGraph::custom(format!("case-{idx}"), case.graph);
        assert_p1_identity(&g);
    }
}

#[test]
fn structured_workloads_p1_machines_are_byte_identical_to_scalar_budgets() {
    // The typed schedulers (dwt-opt, kary, mvm-tiling, conv-stream,
    // banded-stream) only engage on their workload families, which the
    // random corpus never produces.
    let workloads = [
        (Workload::Dwt { n: 16, d: 2 }, WeightScheme::Equal(16)),
        (
            Workload::Mvm { m: 6, n: 8 },
            WeightScheme::DoubleAccumulator(8),
        ),
        (Workload::Conv { n: 24, k: 4 }, WeightScheme::Equal(8)),
        (
            Workload::Banded {
                n: 12,
                bandwidth: 2,
            },
            WeightScheme::Equal(8),
        ),
    ];
    for (w, scheme) in workloads {
        let g = AnyGraph::build(w, scheme).expect("workload builds");
        assert_p1_identity(&g);
    }
}
