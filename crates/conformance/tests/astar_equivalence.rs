//! The bound-guided A\* with dominance pruning and macro moves must return
//! the *same optimal cost* as the plain Dijkstra over the raw four-move
//! game, on every graph and budget.  Proptest drives both solvers over the
//! conformance generator's case space (restricted to ≤ 10 nodes so the
//! unpruned baseline stays cheap) and compares them across the full
//! feasibility-aware budget sweep.
//!
//! This is the end-to-end safety net for all four pruning levers at once:
//! an inadmissible bound, an unsound dominance rule, an incomplete
//! macro-move relation, or an unsound twin-orbit canonicalization would
//! each surface here as a cost mismatch (too high) or a phantom
//! infeasibility (`Some` vs `None`).

use pebblyn_conformance::{generate, oracle::budget_probes};
use pebblyn_exact::ExactSolver;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn astar_matches_plain_dijkstra(seed in 0u64..1024, index in 0u64..256) {
        let case = generate(seed, index);
        let g = &case.graph;
        prop_assume!(g.len() <= 10);

        let astar = ExactSolver::default();
        let baseline = ExactSolver::dijkstra_baseline();
        for b in budget_probes(g) {
            let fast = astar.min_cost(g, b).expect("A* within cap on <=10 nodes");
            let slow = baseline
                .min_cost(g, b)
                .expect("Dijkstra within cap on <=10 nodes");
            prop_assert_eq!(
                fast, slow,
                "{}: A* disagrees with the unpruned baseline at budget {}",
                case.label(), b
            );
        }
    }

    #[test]
    fn pruning_levers_are_independent(seed in 0u64..512, index in 0u64..128) {
        // Each lever alone must also preserve the optimum (ablation grid):
        // heuristic tier × symmetry mode × partial expansion, single-axis
        // ablations plus the pairwise combinations of the new levers.
        use pebblyn_core::Heuristic;
        let case = generate(seed, index);
        let g = &case.graph;
        prop_assume!(g.len() <= 8);

        let reference = ExactSolver::dijkstra_baseline();
        let variants = [
            ExactSolver::default().with_dominance(false),
            ExactSolver::default().with_tighten(false),
            ExactSolver::default().with_symmetry(false),
            ExactSolver::default().with_heuristic(Heuristic::RemainingWork),
            ExactSolver::default().with_heuristic(Heuristic::ForcedReload),
            // New levers, each alone off (everything else at defaults)…
            ExactSolver::default().with_wl_symmetry(false),
            ExactSolver::default().with_partial_expansion(false),
            // …and crossed with the heuristic tiers.
            ExactSolver::default()
                .with_heuristic(Heuristic::ForcedReload)
                .with_partial_expansion(false),
            ExactSolver::default()
                .with_heuristic(Heuristic::RemainingWork)
                .with_wl_symmetry(false)
                .with_partial_expansion(false),
            ExactSolver::default()
                .with_symmetry(false)
                .with_partial_expansion(false),
        ];
        for b in budget_probes(g) {
            let want = reference.min_cost(g, b).unwrap();
            for (vi, v) in variants.iter().enumerate() {
                let got = v.min_cost(g, b).unwrap();
                prop_assert_eq!(
                    got, want,
                    "{}: variant {} disagrees at budget {}",
                    case.label(), vi, b
                );
            }
        }
    }
}
