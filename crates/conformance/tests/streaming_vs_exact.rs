//! Differential pin for the streaming heuristics: on graphs small enough
//! to solve exhaustively (≤ 20 nodes), `topo-window` and `slab-partition`
//! must cost **at least** the exact optimum at every budget in the
//! feasibility-aware sweep — ties allowed, beating it never.
//!
//! The STREAMING conformance regime deliberately runs without an exact
//! cross-check (its whole point is the million-node scale where no exact
//! solve exists); this test is the compensating control at small scale.
//! A streaming schedule *below* the exhaustive optimum would mean either
//! an invalid schedule the validator missed or an unsound exact solver —
//! both stop-the-line findings.

use pebblyn_conformance::streaming::streaming_schedulers;
use pebblyn_conformance::{generate, oracle::budget_probes, OracleConfig};
use pebblyn_core::{min_feasible_budget, validate_moves};
use pebblyn_graphs::AnyGraph;

#[test]
fn streaming_never_beats_exact_on_small_graphs() {
    let schedulers = streaming_schedulers();
    let solver = OracleConfig::default().solver();
    let mut certified = 0usize;

    for idx in 0..48u64 {
        let case = generate(3, idx);
        let g = &case.graph;
        if g.len() > 20 {
            continue;
        }
        let minb = min_feasible_budget(g);
        let any = AnyGraph::custom("streaming-vs-exact", g.clone());

        for b in budget_probes(g) {
            // State-capped searches are skipped, never trusted.
            let Ok(sol) = solver.solve(g, b) else {
                continue;
            };

            for s in &schedulers {
                match s.schedule(&any, b) {
                    Ok(sched) => {
                        let opt = sol.cost.unwrap_or_else(|| {
                            panic!(
                                "{}: {} scheduled at budget {b} where the exact game is infeasible",
                                case.label(),
                                s.name()
                            )
                        });
                        let stats = validate_moves(g, b, sched.iter()).unwrap_or_else(|e| {
                            panic!("{}: {} invalid at budget {b}: {e}", case.label(), s.name())
                        });
                        assert!(
                            stats.cost >= opt,
                            "{}: {} cost {} beats the exact optimum {opt} at budget {b}",
                            case.label(),
                            s.name(),
                            stats.cost
                        );
                        certified += 1;
                    }
                    Err(_) => {
                        // Streaming schedulers support every CDAG, so a
                        // refusal is only legitimate below the Prop. 2.3
                        // minimum — exactly where the game itself is
                        // infeasible.
                        assert!(
                            b < minb,
                            "{}: {} declined feasible budget {b} (minimum {minb})",
                            case.label(),
                            s.name()
                        );
                        assert!(
                            sol.cost.is_none(),
                            "{}: exact solved budget {b} below the Prop. 2.3 minimum {minb}",
                            case.label()
                        );
                    }
                }
            }
        }
    }

    assert!(
        certified >= 100,
        "differential pin certified only {certified} probes — generator or sweep regressed"
    );
}
