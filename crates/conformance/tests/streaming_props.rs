//! Property tests for the streaming schedulers over the conformance
//! generator's full case space — all four CDAG families (chains-of-bands,
//! trees, layered DAGs, diamonds; see `gen`) at randomly drawn budgets,
//! including the INVARIANT profile's larger graphs the exhaustive oracle
//! never certifies.
//!
//! Two invariants per draw:
//!
//! 1. **Feasibility dichotomy (Prop. 2.3)** — below the game-level
//!    minimum both schedulers decline with the correct hint; at or above
//!    it both produce a schedule.
//! 2. **Replay-cost identity** — every produced schedule replays cleanly
//!    through the validator under the *requested* budget, and the
//!    replayed cost equals the schedule's own cost claim and respects the
//!    Prop. 2.4 lower bound.

use pebblyn_conformance::generate;
use pebblyn_conformance::streaming::streaming_schedulers;
use pebblyn_core::{algorithmic_lower_bound, min_feasible_budget, validate_moves, Weight};
use pebblyn_graphs::AnyGraph;
use pebblyn_schedulers::ScheduleError;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_schedules_are_valid_and_cost_honest(
        seed in 0u64..4096,
        index in 0u64..512,
        budget_bump in 0u64..6,
    ) {
        let case = generate(seed, index);
        let g = &case.graph;
        let minb = min_feasible_budget(g);
        let lb = algorithmic_lower_bound(g);
        let step = g.weight_gcd().max(1);
        // Random feasible budget: minimum plus a few weight-gcd steps.
        let budget: Weight = minb + budget_bump * step;
        let any = AnyGraph::custom("streaming-props", g.clone());

        for s in streaming_schedulers() {
            let sched = s.schedule(&any, budget).unwrap_or_else(|e| {
                panic!("{}: {} declined feasible budget {budget}: {e}", case.label(), s.name())
            });
            let stats = validate_moves(g, budget, sched.iter()).unwrap_or_else(|e| {
                panic!("{}: {} invalid at budget {budget}: {e}", case.label(), s.name())
            });
            prop_assert_eq!(
                stats.cost, sched.cost(g),
                "{}: {} replay cost disagrees with the schedule's claim",
                case.label(), s.name()
            );
            prop_assert!(
                stats.cost >= lb,
                "{}: {} cost {} below the Prop. 2.4 bound {}",
                case.label(), s.name(), stats.cost, lb
            );
            prop_assert!(
                stats.peak_red_weight <= budget,
                "{}: {} peak {} exceeds budget {}",
                case.label(), s.name(), stats.peak_red_weight, budget
            );
        }
    }

    #[test]
    fn streaming_declines_below_the_minimum_with_the_right_hint(
        seed in 0u64..4096,
        index in 0u64..512,
    ) {
        let case = generate(seed, index);
        let g = &case.graph;
        let minb = min_feasible_budget(g);
        prop_assume!(minb > 0);
        let any = AnyGraph::custom("streaming-props", g.clone());

        for s in streaming_schedulers() {
            match s.schedule(&any, minb - 1) {
                Err(ScheduleError::InfeasibleBudget { min_feasible }) => prop_assert_eq!(
                    min_feasible, Some(minb),
                    "{}: {} hint disagrees with Prop. 2.3",
                    case.label(), s.name()
                ),
                Ok(_) => prop_assert!(
                    false,
                    "{}: {} scheduled below the Prop. 2.3 minimum {}",
                    case.label(), s.name(), minb
                ),
                Err(e) => prop_assert!(
                    false,
                    "{}: {} wrong error below minimum: {e}",
                    case.label(), s.name()
                ),
            }
        }
    }
}
