//! The STREAMING conformance regime: invariant-only certification of the
//! O(E) streaming schedulers, with the Proposition 2.4 bound gap recorded.
//!
//! The exhaustive oracle cross-checks every registered scheduler against
//! the exact solver, but that relation is meaningless for schedulers built
//! for graphs the exact solver will never touch.  This regime certifies
//! the streaming pair (`topo-window`, `slab-partition`) by *invariants
//! alone*, on the same four generator families and the same
//! feasibility-aware budget probes as the full oracle:
//!
//! 1. **Feasibility (Prop. 2.3)** — below [`min_feasible_budget`] the
//!    scheduler must decline with the game-level hint filled in; at or
//!    above it, a streaming scheduler supports every CDAG and must
//!    succeed.
//! 2. **Replay-cost identity** — the emitted schedule replays cleanly
//!    through [`validate_moves`] under the requested budget, and the
//!    replayed cost equals the schedule's own cost claim.
//! 3. **Bound gap (Prop. 2.4)** — the replayed cost sits at or above
//!    [`algorithmic_lower_bound`]; the observed gap ratio is *recorded*
//!    (not asserted) so the report quantifies how far the heuristics sit
//!    from the information-theoretic floor.
//!
//! There is no exact cross-check and no randomness: every check is a pure
//! function of `(graph, budget)`, which is what lets [`run_streaming`]
//! hand failing cases to the same greedy shrinker the exact regime uses.

use crate::gen::generate;
use crate::oracle::{budget_probes, Violation};
use crate::shrink;
use crate::{Config, Failure};
use pebblyn_core::{algorithmic_lower_bound, min_feasible_budget, validate_moves, Cdag, Weight};
use pebblyn_engine::par::par_map;
use pebblyn_graphs::AnyGraph;
use pebblyn_schedulers::{by_name, ScheduleError, Scheduler};
use pebblyn_telemetry as telemetry;

/// The schedulers this regime certifies, resolved from the live registry
/// so the regime and the CLI can never disagree about what "streaming"
/// means.
///
/// # Panics
///
/// Panics if either streaming scheduler has been dropped from the
/// registry — that is a wiring bug, not a conformance finding.
pub fn streaming_schedulers() -> Vec<&'static dyn Scheduler> {
    ["topo-window", "slab-partition"]
        .into_iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("{n} missing from the registry")))
        .collect()
}

/// One feasible probe's observed distance from the Prop. 2.4 floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapSample {
    /// Replayed schedule cost (weighted I/O bits).
    pub cost: Weight,
    /// [`algorithmic_lower_bound`] of the probed graph.
    pub lower_bound: Weight,
}

impl GapSample {
    /// `cost / lower_bound` — `1.0` means the heuristic hit the floor.
    ///
    /// The lower bound is strictly positive on every valid CDAG (sources
    /// and sinks have positive weights), so the ratio is always finite.
    pub fn ratio(&self) -> f64 {
        self.cost as f64 / self.lower_bound as f64
    }
}

/// Aggregate report of one streaming-regime run.
#[derive(Debug, Clone, Default)]
pub struct StreamingReport {
    /// Cases checked.
    pub cases: u64,
    /// Total `(scheduler, budget)` probes across all cases.
    pub probes: usize,
    /// Probes at or above the Prop. 2.3 minimum (each contributes one
    /// [`GapSample`] unless it failed).
    pub feasible_probes: usize,
    /// Largest observed `cost / lower_bound` ratio.
    pub worst_gap: f64,
    /// Mean observed `cost / lower_bound` ratio over feasible probes.
    pub mean_gap: f64,
    /// Failing cases, shrunk exactly like the exact regime's.
    pub failures: Vec<Failure>,
}

impl StreamingReport {
    /// `true` when no case violated any streaming invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Check both streaming schedulers on one `(graph, budget)` probe.
///
/// Returns the recorded violations plus one [`GapSample`] per scheduler
/// that produced a valid feasible schedule.  Pure — no RNG, no exact
/// solver — so the shrinker can re-invoke it freely.
pub fn check_streaming_graph_at(
    g: &Cdag,
    budget: Weight,
    schedulers: &[&dyn Scheduler],
) -> (Vec<Violation>, Vec<GapSample>) {
    let minb = min_feasible_budget(g);
    let lb = algorithmic_lower_bound(g);
    let any = AnyGraph::custom("streaming", g.clone());
    let mut violations = Vec::new();
    let mut gaps = Vec::new();

    for s in schedulers {
        telemetry::incr(telemetry::Counter::Probes);
        match s.schedule(&any, budget) {
            Ok(schedule) => {
                if budget < minb {
                    violations.push(Violation {
                        check: "phantom-feasibility",
                        scheduler: s.name().to_string(),
                        budget,
                        detail: format!(
                            "produced a schedule below the Prop. 2.3 minimum ({minb} bits)"
                        ),
                    });
                    continue;
                }
                let stats = match validate_moves(g, budget, schedule.iter()) {
                    Ok(stats) => stats,
                    Err(e) => {
                        violations.push(Violation {
                            check: "invalid-schedule",
                            scheduler: s.name().to_string(),
                            budget,
                            detail: format!("replay rejected: {e}"),
                        });
                        continue;
                    }
                };
                let claimed = schedule.cost(g);
                if stats.cost != claimed {
                    violations.push(Violation {
                        check: "cost-claim-mismatch",
                        scheduler: s.name().to_string(),
                        budget,
                        detail: format!(
                            "schedule claims cost {claimed}, replay measured {}",
                            stats.cost
                        ),
                    });
                    continue;
                }
                if stats.cost < lb {
                    violations.push(Violation {
                        check: "below-lower-bound",
                        scheduler: s.name().to_string(),
                        budget,
                        detail: format!("cost {} < algorithmic lower bound {lb}", stats.cost),
                    });
                    continue;
                }
                gaps.push(GapSample {
                    cost: stats.cost,
                    lower_bound: lb,
                });
            }
            Err(ScheduleError::InfeasibleBudget { min_feasible }) => {
                if budget >= minb {
                    violations.push(Violation {
                        check: "streaming-infeasible",
                        scheduler: s.name().to_string(),
                        budget,
                        detail: format!(
                            "declined a feasible budget (Prop. 2.3 minimum is {minb} bits)"
                        ),
                    });
                } else if min_feasible != Some(minb) {
                    violations.push(Violation {
                        check: "infeasible-hint-wrong",
                        scheduler: s.name().to_string(),
                        budget,
                        detail: format!(
                            "hint {min_feasible:?} disagrees with the Prop. 2.3 minimum {minb}"
                        ),
                    });
                }
            }
            Err(e) => {
                violations.push(Violation {
                    check: "streaming-unsupported",
                    scheduler: s.name().to_string(),
                    budget,
                    detail: format!("streaming schedulers support every CDAG, got: {e}"),
                });
            }
        }
    }
    (violations, gaps)
}

/// Check one graph across the oracle's feasibility-aware budget probes.
pub fn check_streaming_graph(
    g: &Cdag,
    schedulers: &[&dyn Scheduler],
) -> (usize, Vec<Violation>, Vec<GapSample>) {
    let mut probes = 0usize;
    let mut violations = Vec::new();
    let mut gaps = Vec::new();
    for b in budget_probes(g) {
        probes += schedulers.len();
        let (v, mut g_samples) = check_streaming_graph_at(g, b, schedulers);
        violations.extend(v);
        gaps.append(&mut g_samples);
    }
    (probes, violations, gaps)
}

/// Run the STREAMING regime: generate `cfg.cases` cases from the same
/// `(seed, index)` space as the exact regime and certify the streaming
/// invariants on each, shrinking any failures.
pub fn run_streaming(cfg: &Config) -> StreamingReport {
    let schedulers = streaming_schedulers();
    let indices: Vec<u64> = (0..cfg.cases).collect();
    let outcomes = par_map(&indices, |&idx| {
        let case = generate(cfg.seed, idx);
        let minb = min_feasible_budget(&case.graph);
        let feasible = budget_probes(&case.graph)
            .into_iter()
            .filter(|&b| b >= minb)
            .count()
            * schedulers.len();
        let (probes, violations, gaps) = check_streaming_graph(&case.graph, &schedulers);
        (case, probes, feasible, violations, gaps)
    });

    let mut report = StreamingReport {
        cases: cfg.cases,
        ..StreamingReport::default()
    };
    let mut gap_sum = 0.0f64;
    let mut gap_count = 0usize;
    for (case, probes, feasible, violations, gaps) in outcomes {
        report.probes += probes;
        report.feasible_probes += feasible;
        for g in gaps {
            let r = g.ratio();
            report.worst_gap = report.worst_gap.max(r);
            gap_sum += r;
            gap_count += 1;
        }
        if !violations.is_empty() {
            report
                .failures
                .push(shrink_streaming_failure(&case, violations, &schedulers));
        }
    }
    if gap_count > 0 {
        report.mean_gap = gap_sum / gap_count as f64;
    }
    report
}

/// Minimize one failing streaming case.
///
/// Mirrors the exact regime's `shrink_failure`: shrink `(graph, budget)`
/// while the same named check keeps failing.  Streaming checks are pure
/// per-budget invariants (there is no sweep-level relation like
/// monotonicity), so every violation reproduces at its recorded budget
/// and the shrinker may minimize the budget too.
fn shrink_streaming_failure(
    case: &crate::TestCase,
    violations: Vec<Violation>,
    schedulers: &[&dyn Scheduler],
) -> Failure {
    let first = violations[0].clone();
    let check = first.check;

    let shrunk = shrink::shrink(&case.graph, first.budget, |g, b| {
        check_streaming_graph_at(g, b, schedulers)
            .0
            .iter()
            .any(|v| v.check == check)
    });

    let shrunk_detail = check_streaming_graph_at(&shrunk.graph, shrunk.budget, schedulers)
        .0
        .into_iter()
        .find(|v| v.check == check)
        .map(|v| v.to_string())
        .unwrap_or_else(|| format!("[{check}] (reproduces only on the unshrunk case)"));

    Failure {
        spec: case.spec,
        label: case.label(),
        violations,
        shrunk,
        shrunk_detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::CdagBuilder;

    fn small_cfg() -> Config {
        Config {
            seed: 3,
            cases: 24,
            ..Config::default()
        }
    }

    #[test]
    fn registry_streaming_pair_is_clean_on_a_small_run() {
        let report = run_streaming(&small_cfg());
        assert!(
            report.is_clean(),
            "violations: {:#?}",
            report
                .failures
                .iter()
                .map(|f| &f.violations)
                .collect::<Vec<_>>()
        );
        assert_eq!(report.cases, 24);
        assert!(report.feasible_probes > 0, "nothing was probed feasibly");
        assert!(
            report.worst_gap >= 1.0,
            "gap ratios are cost/lb >= 1, got {}",
            report.worst_gap
        );
        assert!(report.mean_gap >= 1.0 && report.mean_gap <= report.worst_gap);
    }

    #[test]
    fn streaming_runs_are_deterministic() {
        let a = run_streaming(&small_cfg());
        let b = run_streaming(&small_cfg());
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.feasible_probes, b.feasible_probes);
        assert_eq!(a.worst_gap, b.worst_gap);
        assert_eq!(a.mean_gap, b.mean_gap);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    /// A broken streaming scheduler must be caught *and* shrunk: the
    /// regime's net and the shrinker's recheck both work end-to-end.
    #[test]
    fn a_phantom_feasible_mutant_is_caught_and_shrunk() {
        use crate::mutants;
        let mutant = &mutants::all()[3]; // phantom-feasible: schedules below minb
        let schedulers: Vec<&dyn Scheduler> = vec![mutant.as_ref()];
        let cfg = small_cfg();
        for idx in 0..cfg.cases {
            let case = generate(cfg.seed, idx);
            let (_, violations, _) = check_streaming_graph(&case.graph, &schedulers);
            if violations.is_empty() {
                continue;
            }
            let failure = shrink_streaming_failure(&case, violations, &schedulers);
            assert!(!failure.shrunk_detail.is_empty());
            assert!(failure.shrunk.graph.len() <= case.graph.len());
            return;
        }
        panic!("no mutant violation found in {} cases", cfg.cases);
    }

    #[test]
    fn gap_sample_ratio_is_cost_over_bound() {
        let s = GapSample {
            cost: 96,
            lower_bound: 64,
        };
        assert!((s.ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn hand_built_diamond_passes_every_probe() {
        let mut b = CdagBuilder::new();
        let a = b.node(16, "a");
        let x = b.node(32, "x");
        let y = b.node(32, "y");
        let z = b.node(16, "z");
        b.edge(a, x);
        b.edge(a, y);
        b.edge(x, z);
        b.edge(y, z);
        let g = b.build().unwrap();
        let schedulers = streaming_schedulers();
        let (probes, violations, gaps) = check_streaming_graph(&g, &schedulers);
        assert!(violations.is_empty(), "{violations:#?}");
        assert!(probes >= gaps.len());
        assert!(gaps.iter().all(|s| s.ratio() >= 1.0));
    }
}
