//! Differential conformance and fuzzing harness.
//!
//! Certifies every registered [`Scheduler`] against the exhaustive exact
//! solver on randomized weighted CDAGs.  One *case* is a pure function of
//! `(seed, index)` (see [`rng`]): a random graph from one of four shape
//! families ([`gen`]), checked across a feasibility-aware budget sweep
//! against the full oracle relation lattice ([`oracle`]) and three
//! metamorphic transforms ([`metamorphic`]).  Failing cases are greedily
//! minimized before reporting ([`shrink`]), and the harness's own
//! sensitivity is certified by injecting known-bad schedulers and
//! asserting they are caught ([`mutants`], [`mutation_smoke`]).
//!
//! Entry points: [`run`] fuzzes the real registry, [`mutation_smoke`]
//! fuzzes each mutant until caught, [`run_streaming`] certifies the
//! streaming schedulers by invariants alone ([`streaming`]), and
//! [`run_multi`] certifies the multiprocessor schedulers across processor
//! counts ([`multi`]).  The `conformance` binary wraps all four:
//!
//! ```text
//! cargo run -p pebblyn-conformance -- --seed 3 --cases 2000
//! cargo run -p pebblyn-conformance -- --mutation-smoke
//! cargo run -p pebblyn-conformance -- --streaming --cases 500
//! cargo run -p pebblyn-conformance -- --multi --cases 500 --procs 1,2,4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod metamorphic;
pub mod multi;
pub mod mutants;
pub mod oracle;
pub mod rng;
pub mod shrink;
pub mod streaming;

pub use gen::{generate, CaseSpec, Family, TestCase};
pub use multi::{run_multi, MultiReport, DEFAULT_PROCS};
pub use oracle::{CaseOutcome, OracleConfig, Violation};
pub use rng::SplitRng;
pub use shrink::Shrunk;
pub use streaming::{run_streaming, GapSample, StreamingReport};

use pebblyn_core::{Cdag, Weight};
use pebblyn_engine::par::par_map;
use pebblyn_schedulers::{registry, Scheduler};
use std::fmt;

/// Domain-separation salts: the oracle's value stream and the shrinker's
/// re-check stream must not replay the generator's draws.
const ORACLE_SALT: u64 = 0xA5A5_0123_89AB_CDEF;
const SHRINK_SALT: u64 = 0x5A5A_FEDC_BA98_3210;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Master seed; every case derives from `(seed, index)`.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Oracle knobs.
    pub oracle: OracleConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 3,
            cases: 200,
            oracle: OracleConfig::default(),
        }
    }
}

/// One failing case, minimized.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Reproduction coordinates of the original case.
    pub spec: CaseSpec,
    /// The original case's one-line description.
    pub label: String,
    /// Every violation the oracle recorded on the original case.
    pub violations: Vec<Violation>,
    /// The greedily minimized `(graph, budget)` reproduction.
    pub shrunk: Shrunk,
    /// The matching violation as it appears on the shrunk case.
    pub shrunk_detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FAIL {}", self.label)?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        writeln!(
            f,
            "  shrunk to {} nodes / {} edges at budget {} ({} steps):",
            self.shrunk.graph.len(),
            self.shrunk.graph.edge_count(),
            self.shrunk.budget,
            self.shrunk.steps
        )?;
        writeln!(f, "    {}", self.shrunk_detail)?;
        for line in self.shrunk.graph.to_dot().lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// Aggregate run report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Cases checked.
    pub cases: u64,
    /// Total budget probes across all cases.
    pub budgets: usize,
    /// Probes certified against the exhaustive optimum.
    pub exact_certified: usize,
    /// Probes where the exact search hit its state cap and was skipped.
    pub exact_skipped: usize,
    /// Total states the exact solver expanded across the run — the sweep's
    /// certification cost, and the number the A\* pruning levers drive down.
    pub exact_states: usize,
    /// Failing cases, shrunk.
    pub failures: Vec<Failure>,
}

impl Report {
    /// `true` when no case violated any relation.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Fuzz the real scheduler registry.
pub fn run(cfg: &Config) -> Report {
    run_with_schedulers(cfg, registry())
}

/// Fuzz an explicit scheduler list (the mutation-smoke entry point uses
/// this to inject broken schedulers).
pub fn run_with_schedulers(cfg: &Config, schedulers: &[&dyn Scheduler]) -> Report {
    let indices: Vec<u64> = (0..cfg.cases).collect();
    let outcomes = par_map(&indices, |&idx| {
        let case = generate(cfg.seed, idx);
        let mut rng = SplitRng::for_case(cfg.seed ^ ORACLE_SALT, idx);
        let out = oracle::check_case(&case, schedulers, &cfg.oracle, &mut rng);
        (case, out)
    });

    let mut report = Report {
        cases: cfg.cases,
        ..Report::default()
    };
    for (case, out) in outcomes {
        report.budgets += out.budgets;
        report.exact_certified += out.exact_certified;
        report.exact_skipped += out.exact_skipped;
        report.exact_states += out.exact_states;
        if !out.violations.is_empty() {
            report
                .failures
                .push(shrink_failure(cfg, &case, out.violations, schedulers));
        }
    }
    report
}

/// Minimize one failing case: shrink `(graph, budget)` while the *same
/// oracle relation* keeps failing.
fn shrink_failure(
    cfg: &Config,
    case: &TestCase,
    violations: Vec<Violation>,
    schedulers: &[&dyn Scheduler],
) -> Failure {
    let first = violations[0].clone();
    let check = first.check;
    let seed = cfg.seed ^ SHRINK_SALT;
    let idx = case.spec.index;
    // Monotonicity relations span the whole budget sweep, so their
    // re-check must sweep too; everything else reproduces at the recorded
    // budget, which lets the shrinker minimize the budget as well.
    let sweep_level = matches!(check, "non-monotone" | "exact-non-monotone");

    let recheck = |g: &Cdag, b: Weight| -> Vec<Violation> {
        let mut rng = SplitRng::for_case(seed, idx);
        if sweep_level {
            let mut out = CaseOutcome::default();
            oracle::check_graph(g, "shrink", schedulers, &cfg.oracle, &mut rng, &mut out);
            out.violations
        } else {
            oracle::check_graph_at(g, b, schedulers, &cfg.oracle, &mut rng).violations
        }
    };

    let shrunk = shrink::shrink(&case.graph, first.budget, |g, b| {
        if sweep_level && b != first.budget {
            return false;
        }
        recheck(g, b).iter().any(|v| v.check == check)
    });

    let shrunk_detail = recheck(&shrunk.graph, shrunk.budget)
        .into_iter()
        .find(|v| v.check == check)
        .map(|v| v.to_string())
        .unwrap_or_else(|| format!("[{check}] (reproduces only on the unshrunk case)"));

    Failure {
        spec: case.spec,
        label: case.label(),
        violations,
        shrunk,
        shrunk_detail,
    }
}

/// Result of hunting one injected mutant.
#[derive(Debug, Clone)]
pub struct MutantReport {
    /// The mutant's scheduler name.
    pub name: String,
    /// Whether the oracle caught it within the case budget.
    pub caught: bool,
    /// Cases generated before the first catch (or the full budget).
    pub cases_tried: u64,
    /// The shrunk counterexample, when caught.
    pub example: Option<Failure>,
}

/// Certify the harness itself: inject each known-bad scheduler and hunt
/// it until the oracle objects.  A mutant surviving `cfg.cases` cases
/// means the net has a hole.
pub fn mutation_smoke(cfg: &Config) -> Vec<MutantReport> {
    mutants::all()
        .iter()
        .map(|m| {
            let schedulers: Vec<&dyn Scheduler> = vec![m.as_ref()];
            for idx in 0..cfg.cases {
                let case = generate(cfg.seed, idx);
                let mut rng = SplitRng::for_case(cfg.seed ^ ORACLE_SALT, idx);
                let out = oracle::check_case(&case, &schedulers, &cfg.oracle, &mut rng);
                let mine: Vec<Violation> = out
                    .violations
                    .into_iter()
                    .filter(|v| v.scheduler == m.name())
                    .collect();
                if !mine.is_empty() {
                    let failure = shrink_failure(cfg, &case, mine, &schedulers);
                    return MutantReport {
                        name: m.name().to_string(),
                        caught: true,
                        cases_tried: idx + 1,
                        example: Some(failure),
                    };
                }
            }
            MutantReport {
                name: m.name().to_string(),
                caught: false,
                cases_tried: cfg.cases,
                example: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Config {
        Config {
            seed: 3,
            cases: 24,
            oracle: OracleConfig::default(),
        }
    }

    #[test]
    fn registry_is_clean_on_a_small_run() {
        let report = run(&small_cfg());
        assert!(
            report.is_clean(),
            "violations: {:#?}",
            report
                .failures
                .iter()
                .map(|f| &f.violations)
                .collect::<Vec<_>>()
        );
        assert_eq!(report.cases, 24);
        assert!(report.exact_certified > 0, "nothing was certified");
    }

    #[test]
    fn every_mutant_is_caught_and_shrunk() {
        let reports = mutation_smoke(&small_cfg());
        assert_eq!(reports.len(), mutants::all().len());
        for r in &reports {
            assert!(r.caught, "{} escaped the harness", r.name);
            let ex = r.example.as_ref().expect("caught implies an example");
            assert!(
                ex.shrunk.graph.len() <= ex.violations.len().max(1) * 12,
                "{}: shrunk case suspiciously large ({} nodes)",
                r.name,
                ex.shrunk.graph.len()
            );
            assert!(!ex.shrunk_detail.is_empty());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&small_cfg());
        let b = run(&small_cfg());
        assert_eq!(a.budgets, b.budgets);
        assert_eq!(a.exact_certified, b.exact_certified);
        assert_eq!(a.exact_skipped, b.exact_skipped);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
