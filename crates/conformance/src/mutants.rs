//! Known-bad scheduler wrappers for mutation smoke testing.
//!
//! A differential harness is only as good as its ability to *fail*: if an
//! intentionally broken scheduler sails through, the net has a hole.  Each
//! mutant here wraps the naive baseline with one classic defect; the smoke
//! mode in [`crate::mutation_smoke`] asserts the oracle catches every one
//! and shrinks a counterexample for it.
//!
//! The defects are chosen so each trips a *different* oracle relation:
//!
//! * [`OffByOneBudget`] — schedules against `budget + gcd` (the classic
//!   fencepost); its schedule overruns the requested budget at the tight
//!   probe (`invalid-schedule` / `phantom-feasibility`).
//! * [`DroppedStore`] — silently drops the final `Store`, leaving a sink
//!   unsaved (`invalid-schedule`: stopping condition unmet).
//! * [`CostMisreport`] — returns a cost claim one unit below the replayed
//!   truth (`cost-claim-mismatch`), the "benchmarks lie" defect.
//! * [`PhantomFeasible`] — claims feasibility below the minimum feasible
//!   budget (`phantom-feasibility`), the broken-feasibility-check defect.

use pebblyn_core::{min_feasible_budget, validate_schedule, Move, Schedule, Weight};
use pebblyn_graphs::AnyGraph;
use pebblyn_schedulers::api::{sealed, Naive};
use pebblyn_schedulers::{ScheduleError, Scheduler};

// `Scheduler` is sealed; the mutants are exactly the kind of deliberate
// out-of-crate implementor the hidden marker exists for.
impl sealed::Sealed for OffByOneBudget {}
impl sealed::Sealed for DroppedStore {}
impl sealed::Sealed for CostMisreport {}
impl sealed::Sealed for PhantomFeasible {}

/// Fencepost: consumes one weight-gcd more budget than requested.
#[derive(Debug, Clone, Copy, Default)]
pub struct OffByOneBudget;

impl Scheduler for OffByOneBudget {
    fn name(&self) -> &str {
        "mutant:off-by-one-budget"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        let step = g.cdag().weight_gcd().max(1);
        Naive.schedule(g, budget + step)
    }
    // Swallowed-validation default, as in the other mutants: at the tight
    // probe the fencepost schedule overruns the requested budget and the
    // replay rejection masquerades as infeasibility.
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        let sched = self.schedule(g, budget)?;
        validate_schedule(g.cdag(), budget, &sched)
            .map(|st| st.cost)
            .map_err(|_| ScheduleError::InfeasibleBudget { min_feasible: None })
    }
}

/// Drops the last `Store`, so one output never reaches slow memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct DroppedStore;

impl Scheduler for DroppedStore {
    fn name(&self) -> &str {
        "mutant:dropped-store"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        let sched = Naive.schedule(g, budget)?;
        let mut moves: Vec<Move> = sched.iter().collect();
        if let Some(pos) = moves.iter().rposition(|m| matches!(m, Move::Store(_))) {
            moves.remove(pos);
        }
        Ok(Schedule::from_moves(moves))
    }
    // Reproduces the pre-redesign `.ok()` default: a replay rejection is
    // swallowed into "infeasible", which is precisely the masquerade the
    // oracle must see through.
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        let sched = self.schedule(g, budget)?;
        validate_schedule(g.cdag(), budget, &sched)
            .map(|st| st.cost)
            .map_err(|_| ScheduleError::InfeasibleBudget { min_feasible: None })
    }
}

/// Reports one unit less cost than its schedule actually incurs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostMisreport;

impl Scheduler for CostMisreport {
    fn name(&self) -> &str {
        "mutant:cost-misreport"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        Naive.schedule(g, budget)
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        let sched = self.schedule(g, budget)?;
        Ok(sched.cost(g.cdag()).saturating_sub(1))
    }
}

/// Ignores infeasibility: always schedules as if the budget sufficed.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhantomFeasible;

impl Scheduler for PhantomFeasible {
    fn name(&self) -> &str {
        "mutant:phantom-feasible"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        let minb = min_feasible_budget(g.cdag());
        Naive.schedule(g, budget.max(minb))
    }
    // Same swallowed-validation default as [`DroppedStore`]: below the
    // true minimum the padded schedule busts the requested budget on
    // replay and the mutant quietly reports "infeasible".
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        let sched = self.schedule(g, budget)?;
        validate_schedule(g.cdag(), budget, &sched)
            .map(|st| st.cost)
            .map_err(|_| ScheduleError::InfeasibleBudget { min_feasible: None })
    }
}

/// All mutants, in a stable order.
pub fn all() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(OffByOneBudget),
        Box::new(DroppedStore),
        Box::new(CostMisreport),
        Box::new(PhantomFeasible),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::validate_moves;
    use pebblyn_graphs::testgraphs;
    use pebblyn_graphs::WeightScheme;

    #[test]
    fn mutants_misbehave_on_a_diamond() {
        let g = testgraphs::diamond(WeightScheme::Equal(2));
        let any = AnyGraph::custom("diamond", g.clone());
        let minb = min_feasible_budget(&g);

        // Off-by-one and phantom-feasible return schedules below minb...
        assert!(OffByOneBudget.schedule(&any, minb - 1).is_ok());
        assert!(PhantomFeasible.schedule(&any, minb - 2).is_ok());
        // ...and those schedules do not actually fit the requested budget.
        let s = PhantomFeasible.schedule(&any, minb - 2).unwrap();
        assert!(validate_moves(&g, minb - 2, s.iter()).is_err());

        // The dropped store breaks the stopping condition.
        let s = DroppedStore.schedule(&any, 4 * g.total_weight()).unwrap();
        assert!(validate_moves(&g, 4 * g.total_weight(), s.iter()).is_err());

        // The misreporter's claim disagrees with its replay.
        let b = 4 * g.total_weight();
        let claimed = CostMisreport.min_cost(&any, b).unwrap();
        let replayed = validate_moves(&g, b, CostMisreport.schedule(&any, b).unwrap().iter())
            .unwrap()
            .cost;
        assert_ne!(claimed, replayed);
    }
}
