//! The MULTI conformance regime: invariant certification of the
//! multiprocessor schedulers across processor counts.
//!
//! The exact oracle certifies single-processor optimality; nothing like an
//! exhaustive multiprocessor optimum is tractable, so this regime pins the
//! multiprocessor schedulers (`partition-belady`, `comm-list`) to the
//! relations that *are* checkable, on the same generator families and
//! feasibility-aware budget probes as the other regimes:
//!
//! 1. **Feasibility** — at or above the Proposition 2.3 minimum per
//!    processor, both schedulers must produce a schedule for every CDAG at
//!    every probed processor count.
//! 2. **Replay** — the schedule replays cleanly through
//!    [`validate_multi_schedule`]; the replayed per-processor red peaks
//!    respect every processor's budget (re-asserted outside the validator
//!    so a validator regression cannot mask a scheduler one).
//! 3. **I/O floor** — replayed I/O cost (loads + stores, communication
//!    excluded) sits at or above [`algorithmic_lower_bound`]: every source
//!    still enters fast memory at least once and every sink is still
//!    stored, no matter how many processors participate.
//! 4. **Makespan floor** — the makespan covers both the weighted compute
//!    critical path (dependencies serialize across processors through
//!    stores/communication) and the average work bound
//!    `ceil(total compute weight / p)`.
//! 5. **p = 1 identity** — on a uniprocessor machine both multiprocessor
//!    schedulers project to *byte-identical* `greedy-belady` move streams:
//!    the multiprocessor surface is a strict extension, not a fork.
//! 6. **Monotonicity in p** — `partition-belady` selects the best machine
//!    prefix, so its `(makespan, total cost)` objective never worsens as
//!    processors are added at a fixed per-processor budget.
//! 7. **Work conservation** — `comm-list` dispatches to the least-loaded
//!    processor, so it must occupy at least `min(p, computed nodes)`
//!    processors.

use crate::gen::generate;
use crate::oracle::{budget_probes, Violation};
use crate::shrink;
use crate::{Config, Failure};
use pebblyn_core::{
    algorithmic_lower_bound, min_feasible_budget, validate_multi_schedule, Cdag, MachineSpec,
    MultiSchedule, Weight,
};
use pebblyn_engine::par::par_map;
use pebblyn_graphs::AnyGraph;
use pebblyn_schedulers::{by_name, Scheduler};
use pebblyn_telemetry as telemetry;

/// The multiprocessor schedulers this regime certifies, resolved from the
/// live registry so the regime and the CLI can never disagree.
///
/// # Panics
///
/// Panics if either scheduler is missing from the registry — a wiring bug,
/// not a conformance finding.
pub fn multi_schedulers() -> Vec<&'static dyn Scheduler> {
    ["partition-belady", "comm-list"]
        .into_iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("{n} missing from the registry")))
        .collect()
}

/// The processor counts a default MULTI run sweeps.
pub const DEFAULT_PROCS: &[usize] = &[1, 2, 4];

/// Aggregate report of one MULTI-regime run.
#[derive(Debug, Clone, Default)]
pub struct MultiReport {
    /// Cases checked.
    pub cases: u64,
    /// Total `(scheduler, budget, procs)` probes across all cases.
    pub probes: usize,
    /// Total communication moves observed across all feasible probes.
    pub comm_moves: u64,
    /// Failing cases, shrunk exactly like the other regimes'.
    pub failures: Vec<Failure>,
}

impl MultiReport {
    /// `true` when no case violated any multiprocessor invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The weighted compute critical path: the heaviest compute-weight chain,
/// a makespan floor no processor count can beat.
fn critical_path(g: &Cdag) -> Weight {
    let mut down = vec![0 as Weight; g.len()];
    let mut best = 0;
    for &v in g.topo_order().iter().rev() {
        let tail = g
            .succs(v)
            .iter()
            .map(|&s| down[s.index()])
            .max()
            .unwrap_or(0);
        let own = if g.is_source(v) { 0 } else { g.weight(v) };
        down[v.index()] = own + tail;
        best = best.max(down[v.index()]);
    }
    best
}

/// Check both multiprocessor schedulers on one `(graph, budget)` probe
/// across `procs`.  Pure — no RNG — so the shrinker can re-invoke it.
pub fn check_multi_graph_at(
    g: &Cdag,
    budget: Weight,
    procs: &[usize],
    schedulers: &[&dyn Scheduler],
) -> (Vec<Violation>, u64) {
    let minb = min_feasible_budget(g);
    let lb = algorithmic_lower_bound(g);
    let cp = critical_path(g);
    let work: Weight = g
        .nodes()
        .filter(|&v| !g.is_source(v))
        .map(|v| g.weight(v))
        .sum();
    let computes = g.nodes().filter(|&v| !g.is_source(v)).count();
    let any = AnyGraph::custom("multi", g.clone());
    let mut violations = Vec::new();
    let mut comm_total = 0u64;
    let single = pebblyn_schedulers::greedy_belady::schedule(g, budget);

    for s in schedulers {
        // (makespan, total cost) of the previous processor count, for the
        // partition scheduler's monotonicity relation.
        let mut prev_key: Option<(Weight, Weight)> = None;
        for &p in procs {
            telemetry::incr(telemetry::Counter::Probes);
            let spec = MachineSpec::symmetric(p, budget);
            let mut fail = |check: &'static str, detail: String| {
                violations.push(Violation {
                    check,
                    scheduler: format!("{}@p{p}", s.name()),
                    budget,
                    detail,
                });
            };
            let ms: MultiSchedule = match s.schedule_multi(&any, &spec) {
                Ok(ms) => ms,
                Err(e) => {
                    if budget >= minb {
                        fail(
                            "multi-infeasible",
                            format!("declined a feasible budget ({minb} bits suffice): {e}"),
                        );
                    }
                    continue;
                }
            };
            if budget < minb {
                fail(
                    "multi-phantom-feasibility",
                    format!("produced a schedule below the Prop. 2.3 minimum ({minb} bits)"),
                );
                continue;
            }
            let stats = match validate_multi_schedule(g, &spec, &ms) {
                Ok(stats) => stats,
                Err(e) => {
                    fail("multi-invalid", format!("replay rejected: {e}"));
                    continue;
                }
            };
            comm_total += stats.comm_moves;
            if let Some((q, &peak)) = stats
                .peak_red
                .iter()
                .enumerate()
                .find(|&(q, &peak)| peak > spec.proc_budget(q))
            {
                fail(
                    "multi-budget-exceeded",
                    format!(
                        "processor {q} peaked at {peak} over budget {}",
                        spec.proc_budget(q)
                    ),
                );
                continue;
            }
            if stats.io_cost < lb {
                fail(
                    "multi-below-lower-bound",
                    format!("I/O cost {} < algorithmic lower bound {lb}", stats.io_cost),
                );
            }
            let span_floor = cp.max(work.div_ceil(p as Weight));
            if stats.makespan < span_floor {
                fail(
                    "multi-makespan-floor",
                    format!(
                        "makespan {} < max(critical path {cp}, work/p {})",
                        stats.makespan,
                        work.div_ceil(p as Weight)
                    ),
                );
            }
            if p == 1 {
                match (&single, ms.project_single()) {
                    (Some(expected), Some(projected)) if &projected == expected => {}
                    (Some(_), got) => fail(
                        "multi-p1-divergence",
                        format!(
                            "p=1 projection is not byte-identical to greedy-belady \
                             (projected {} moves)",
                            got.map(|s| s.len()).unwrap_or(0)
                        ),
                    ),
                    (None, _) => fail(
                        "multi-p1-divergence",
                        "scheduled at p=1 where greedy-belady is infeasible".to_string(),
                    ),
                }
                if stats.comm_moves != 0 {
                    fail(
                        "multi-p1-comm",
                        format!("{} communication moves on one processor", stats.comm_moves),
                    );
                }
            }
            if s.name() == "partition-belady" {
                let key = (stats.makespan, stats.total_cost());
                if let Some(prev) = prev_key {
                    if key > prev {
                        fail(
                            "multi-non-monotone",
                            format!(
                                "objective worsened with more processors: {key:?} after {prev:?}"
                            ),
                        );
                    }
                }
                prev_key = Some(key);
            }
            if s.name() == "comm-list" && stats.procs_used() < p.min(computes) {
                fail(
                    "multi-not-work-conserving",
                    format!(
                        "used {} of {p} processors with {computes} computed nodes",
                        stats.procs_used()
                    ),
                );
            }
        }
    }
    (violations, comm_total)
}

/// Check one graph across the feasibility-aware budget probes.
pub fn check_multi_graph(
    g: &Cdag,
    procs: &[usize],
    schedulers: &[&dyn Scheduler],
) -> (usize, Vec<Violation>, u64) {
    let minb = min_feasible_budget(g);
    let mut probes = 0usize;
    let mut violations = Vec::new();
    let mut comm = 0u64;
    for b in budget_probes(g) {
        if b < minb {
            continue; // the multi surface declines these uniformly; nothing to learn
        }
        probes += schedulers.len() * procs.len();
        let (v, c) = check_multi_graph_at(g, b, procs, schedulers);
        violations.extend(v);
        comm += c;
    }
    (probes, violations, comm)
}

/// Run the MULTI regime: generate `cfg.cases` cases from the same
/// `(seed, index)` space as the other regimes and certify the
/// multiprocessor invariants on each at every processor count in `procs`,
/// shrinking any failures.
pub fn run_multi(cfg: &Config, procs: &[usize]) -> MultiReport {
    let schedulers = multi_schedulers();
    let indices: Vec<u64> = (0..cfg.cases).collect();
    let outcomes = par_map(&indices, |&idx| {
        let case = generate(cfg.seed, idx);
        let (probes, violations, comm) = check_multi_graph(&case.graph, procs, &schedulers);
        (case, probes, violations, comm)
    });

    let mut report = MultiReport {
        cases: cfg.cases,
        ..MultiReport::default()
    };
    for (case, probes, violations, comm) in outcomes {
        report.probes += probes;
        report.comm_moves += comm;
        if !violations.is_empty() {
            report
                .failures
                .push(shrink_multi_failure(&case, violations, procs, &schedulers));
        }
    }
    report
}

/// Minimize one failing MULTI case.  Every check reproduces at its
/// recorded budget (the monotonicity relation spans processor counts, not
/// budgets), so the shrinker may minimize the budget too.
fn shrink_multi_failure(
    case: &crate::TestCase,
    violations: Vec<Violation>,
    procs: &[usize],
    schedulers: &[&dyn Scheduler],
) -> Failure {
    let first = violations[0].clone();
    let check = first.check;

    let shrunk = shrink::shrink(&case.graph, first.budget, |g, b| {
        check_multi_graph_at(g, b, procs, schedulers)
            .0
            .iter()
            .any(|v| v.check == check)
    });

    let shrunk_detail = check_multi_graph_at(&shrunk.graph, shrunk.budget, procs, schedulers)
        .0
        .into_iter()
        .find(|v| v.check == check)
        .map(|v| v.to_string())
        .unwrap_or_else(|| format!("[{check}] (reproduces only on the unshrunk case)"));

    Failure {
        spec: case.spec,
        label: case.label(),
        violations,
        shrunk,
        shrunk_detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::CdagBuilder;

    fn small_cfg() -> Config {
        Config {
            seed: 3,
            cases: 16,
            ..Config::default()
        }
    }

    #[test]
    fn registry_multi_pair_is_clean_on_a_small_run() {
        let report = run_multi(&small_cfg(), DEFAULT_PROCS);
        assert!(
            report.is_clean(),
            "violations: {:#?}",
            report
                .failures
                .iter()
                .map(|f| &f.violations)
                .collect::<Vec<_>>()
        );
        assert_eq!(report.cases, 16);
        assert!(report.probes > 0, "nothing was probed");
    }

    #[test]
    fn multi_runs_are_deterministic() {
        let a = run_multi(&small_cfg(), DEFAULT_PROCS);
        let b = run_multi(&small_cfg(), DEFAULT_PROCS);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.comm_moves, b.comm_moves);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn hand_built_diamond_passes_every_probe() {
        let mut b = CdagBuilder::new();
        let a = b.node(16, "a");
        let x = b.node(32, "x");
        let y = b.node(32, "y");
        let z = b.node(16, "z");
        b.edge(a, x);
        b.edge(a, y);
        b.edge(x, z);
        b.edge(y, z);
        let g = b.build().unwrap();
        let (probes, violations, _) = check_multi_graph(&g, DEFAULT_PROCS, &multi_schedulers());
        assert!(violations.is_empty(), "{violations:#?}");
        assert!(probes > 0);
    }

    /// A deliberately broken "multiprocessor" scheduler — it silently drops
    /// the last compute — must be caught by the replay check.
    #[test]
    fn a_truncating_mutant_is_caught() {
        use pebblyn_core::{MultiSchedule, Weight};
        use pebblyn_schedulers::{api, ScheduleError};

        struct Truncating;
        impl api::sealed::Sealed for Truncating {}
        impl Scheduler for Truncating {
            fn name(&self) -> &str {
                "truncating"
            }
            fn supports(&self, _g: &AnyGraph) -> bool {
                true
            }
            fn schedule(
                &self,
                g: &AnyGraph,
                budget: Weight,
            ) -> Result<pebblyn_core::Schedule, ScheduleError> {
                pebblyn_schedulers::greedy_belady::schedule(g.cdag(), budget)
                    .ok_or(ScheduleError::InfeasibleBudget { min_feasible: None })
            }
            fn supports_machine(&self, _g: &AnyGraph, _spec: &MachineSpec) -> bool {
                true
            }
            fn schedule_multi(
                &self,
                g: &AnyGraph,
                spec: &MachineSpec,
            ) -> Result<MultiSchedule, ScheduleError> {
                let full = self.schedule(g, spec.proc_budget(0))?;
                let moves: Vec<_> = full.iter().collect();
                let cut = moves.len().saturating_sub(1);
                Ok(MultiSchedule::from_single(
                    &pebblyn_core::Schedule::from_moves(moves[..cut].to_vec()),
                ))
            }
        }

        let schedulers: Vec<&dyn Scheduler> = vec![&Truncating];
        let cfg = small_cfg();
        for idx in 0..cfg.cases {
            let case = generate(cfg.seed, idx);
            let (_, violations, _) = check_multi_graph(&case.graph, &[2], &schedulers);
            if violations.iter().any(|v| v.check == "multi-invalid") {
                return;
            }
        }
        panic!("truncating mutant escaped the MULTI regime");
    }
}
