//! Random weighted-CDAG generator families.
//!
//! Four shape families, chosen to cover the structure classes where the
//! schedulers' assumptions differ:
//!
//! * **chains** — the degenerate `k = 1` trees (interior nodes are free to
//!   pebble; only the ends cost),
//! * **random in-trees** — the k-ary DP's home turf, with independent
//!   per-node weights,
//! * **layered DAGs** — what the layer-by-layer baseline expects,
//! * **fan-in meshes** — general DAGs with shared operands and multiple
//!   sinks (diamond motifs composed at random), the class where
//!   red-blue-pebbling intuition is known to fail and which none of the
//!   structured generators in `tests/` produce.
//!
//! Every case is a pure function of `(master seed, case index)` via
//! [`SplitRng::for_case`], so any failure reproduces from the two printed
//! integers.  Cases alternate between two regimes: **exhaustive** (small
//! node counts and weights, so the exact solver can certify optimality)
//! and **invariant-only** (larger graphs checked against the game rules,
//! the replayer, and the metamorphic relations, but not the optimum).

use crate::rng::SplitRng;
use pebblyn_core::{Cdag, CdagBuilder, NodeId, Weight};
use pebblyn_graphs::{testgraphs, tree};
use rand::Rng;
use std::fmt;

/// The shape family of a generated case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// A weighted path graph.
    Chain,
    /// A random weighted in-tree (single sink, bounded in-degree).
    Tree,
    /// A random layered DAG (every non-input draws 1–2 parents from the
    /// previous layer).
    Layered,
    /// A random fan-in mesh: each new node joins 2–3 distinct earlier
    /// nodes, composing diamond/reconvergence motifs.
    Mesh,
}

impl Family {
    /// All families, in generation rotation order.
    pub const ALL: [Family; 4] = [Family::Chain, Family::Tree, Family::Layered, Family::Mesh];
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Chain => "chain",
            Family::Tree => "tree",
            Family::Layered => "layered",
            Family::Mesh => "mesh",
        };
        write!(f, "{s}")
    }
}

/// Identity of one generated case: everything needed to regenerate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseSpec {
    /// The harness master seed.
    pub seed: u64,
    /// The case index under that seed.
    pub index: u64,
}

impl fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "--seed {} (case {})", self.seed, self.index)
    }
}

/// A generated test case: the graph plus its provenance.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Where this case came from (reproduction coordinates).
    pub spec: CaseSpec,
    /// Shape family.
    pub family: Family,
    /// The generated weighted CDAG.
    pub graph: Cdag,
}

impl TestCase {
    /// One-line description: family, size, repro coordinates.
    pub fn label(&self) -> String {
        format!(
            "{}(n={}, e={}) {}",
            self.family,
            self.graph.len(),
            self.graph.edge_count(),
            self.spec
        )
    }
}

/// Size / weight limits for one generation regime.
#[derive(Debug, Clone, Copy)]
pub struct SizeProfile {
    /// Inclusive node-count band the generator aims for.
    pub min_nodes: usize,
    /// Upper node-count bound (hard: generators never exceed it).
    pub max_nodes: usize,
    /// Per-node weights are drawn from `1..=max_weight`.
    pub max_weight: Weight,
}

/// Small graphs + small weights: the exact solver can exhaust these.
///
/// The ceiling has moved with the solver: plain Dijkstra was practical to
/// 12 nodes, the bound-guided A\* (dominance pruning + macro moves) raised
/// it to 16, twin-orbit symmetry reduction on the mask-generic search to
/// 20, and the landmark/PDB lower-bound tier plus certified WL-orbit
/// generators and partial expansion raise it to 24 under the same 5M-state
/// cap and CI wall-clock guard.
pub const EXHAUSTIVE: SizeProfile = SizeProfile {
    min_nodes: 3,
    max_nodes: 24,
    max_weight: 3,
};

/// Larger graphs checked in invariant-only mode.  The 44-node ceiling
/// exercises the relation lattice well past the exhaustible band while
/// staying far under the 256-node `Words<4>` mask limit.
pub const INVARIANT: SizeProfile = SizeProfile {
    min_nodes: 25,
    max_nodes: 44,
    max_weight: 8,
};

/// Generate case `index` under `seed`.
///
/// Three out of four cases use the [`EXHAUSTIVE`] profile (differential
/// certification against the exact optimum is the harness's whole point);
/// every fourth stretches into [`INVARIANT`] sizes.
pub fn generate(seed: u64, index: u64) -> TestCase {
    let mut rng = SplitRng::for_case(seed, index);
    let profile = if index % 4 == 3 {
        INVARIANT
    } else {
        EXHAUSTIVE
    };
    let family = Family::ALL[(index % 4 + index / 4) as usize % 4];
    let graph = generate_shape(family, profile, &mut rng);
    TestCase {
        spec: CaseSpec { seed, index },
        family,
        graph,
    }
}

fn generate_shape(family: Family, p: SizeProfile, rng: &mut SplitRng) -> Cdag {
    match family {
        Family::Chain => chain(p, rng),
        Family::Tree => in_tree(p, rng),
        Family::Layered => layered(p, rng),
        Family::Mesh => mesh(p, rng),
    }
}

fn chain(p: SizeProfile, rng: &mut SplitRng) -> Cdag {
    let len = rng.gen_range(p.min_nodes.max(2)..=p.max_nodes);
    let mut b = CdagBuilder::with_capacity(len);
    let mut prev = b.node(rng.gen_range(1..=p.max_weight), "x0");
    for i in 1..len {
        let v = b.node(rng.gen_range(1..=p.max_weight), format!("x{i}"));
        b.edge(prev, v);
        prev = v;
    }
    b.build().expect("chain is structurally valid")
}

fn in_tree(p: SizeProfile, rng: &mut SplitRng) -> Cdag {
    // random_weighted_tree sizes by internal-node count and grows leaves on
    // demand; retry until the result lands under the profile's hard cap.
    // With internal <= max_nodes/3 and k <= 3 the first attempt almost
    // always fits.  A third of trees get uniform weights: that is the
    // regime where the k-ary DP is certifiably optimal
    // (contiguous-evaluation-safe), so the exact-equality relation stays
    // exercised alongside the free-weight trees that only get the >= bound.
    let k_max = rng.gen_range(1usize..=3);
    let weights = if rng.gen_bool(1.0 / 3.0) {
        let w = rng.gen_range(1..=p.max_weight);
        w..=w
    } else {
        1..=p.max_weight
    };
    loop {
        let internal = rng.gen_range(1usize..=(p.max_nodes / 3).max(1));
        let t = tree::random_weighted_tree(internal, k_max, weights.clone(), rng)
            .expect("tree parameters are in range");
        if t.len() <= p.max_nodes {
            return t;
        }
    }
}

fn layered(p: SizeProfile, rng: &mut SplitRng) -> Cdag {
    let layers = rng.gen_range(2usize..=4);
    let width = rng.gen_range(1usize..=(p.max_nodes / layers).max(1));
    testgraphs::random_layered_dag(layers, width, 1..=p.max_weight, rng)
        .expect("layered parameters are in range")
}

/// Fan-in mesh: start from a few sources; each subsequent node picks 2–3
/// distinct predecessors among all earlier nodes (biased toward recent
/// ones, which composes diamonds).  Earlier nodes left without a consumer
/// become extra sinks — legal as long as no node is isolated, which the
/// final patch-up guarantees.
fn mesh(p: SizeProfile, rng: &mut SplitRng) -> Cdag {
    let n = rng.gen_range(p.min_nodes.max(4)..=p.max_nodes);
    let n_sources = rng.gen_range(2usize..=(n / 2).max(2)).min(n - 1);
    let mut b = CdagBuilder::with_capacity(n);
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.node(rng.gen_range(1..=p.max_weight), format!("m{i}")))
        .collect();
    let mut has_succ = vec![false; n];
    for j in n_sources..n {
        let fan = rng.gen_range(2usize..=3).min(j);
        let mut picked: Vec<usize> = Vec::with_capacity(fan);
        while picked.len() < fan {
            // Square the uniform draw toward j so reconvergent diamonds on
            // recent nodes dominate over long-range edges.
            let r = rng.gen_range(0..j * j);
            let i = (r as f64).sqrt() as usize;
            let i = i.min(j - 1);
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        for &i in &picked {
            b.edge(ids[i], ids[j]);
            has_succ[i] = true;
        }
    }
    // Patch isolated prefixes: any non-final node without a consumer that
    // is also a source would be isolated; feed it to a later node it does
    // not already feed.
    for i in 0..n - 1 {
        if !has_succ[i] && i < n_sources {
            let j = rng.gen_range(i + 1..n);
            b.edge(ids[i], ids[j]);
            has_succ[i] = true;
        }
    }
    b.build()
        .expect("mesh construction keeps every node connected")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for idx in 0..16 {
            let a = generate(3, idx);
            let b = generate(3, idx);
            assert_eq!(a.graph, b.graph, "case {idx} not reproducible");
            assert_eq!(a.family, b.family);
        }
    }

    #[test]
    fn all_families_appear_and_respect_bounds() {
        let mut seen = std::collections::HashSet::new();
        for idx in 0..64 {
            let c = generate(7, idx);
            seen.insert(c.family);
            let cap = if idx % 4 == 3 {
                INVARIANT.max_nodes
            } else {
                EXHAUSTIVE.max_nodes
            };
            assert!(
                c.graph.len() <= cap,
                "case {idx} ({}) has {} nodes over cap {cap}",
                c.family,
                c.graph.len()
            );
        }
        assert_eq!(seen.len(), 4, "not all families generated: {seen:?}");
    }

    #[test]
    fn meshes_contain_reconvergence() {
        // At least some meshes must have a node with out-degree >= 2
        // (shared operands) — the whole point of the family.
        let mut found = false;
        for idx in 0..32 {
            let c = generate(11, idx);
            if c.family == Family::Mesh && c.graph.nodes().any(|v| c.graph.out_degree(v) >= 2) {
                found = true;
            }
        }
        assert!(found, "no mesh with shared operands in 32 cases");
    }
}
