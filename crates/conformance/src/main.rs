//! The `conformance` binary: fuzz the scheduler registry, or certify the
//! harness itself in mutation-smoke mode.
//!
//! ```text
//! cargo run --release -p pebblyn-conformance -- --seed 3 --cases 2000
//! cargo run --release -p pebblyn-conformance -- --mutation-smoke
//! ```
//!
//! Exit codes: `0` clean, `1` violations found (or a mutant escaped),
//! `2` usage error.

use pebblyn_conformance::{mutation_smoke, run, run_multi, run_streaming, Config, DEFAULT_PROCS};
use pebblyn_core::Heuristic;
use pebblyn_telemetry as telemetry;
use std::process::ExitCode;

const USAGE: &str = "\
USAGE: conformance [OPTIONS]

Differential conformance fuzzing for the pebblyn scheduler stack.

OPTIONS:
  --seed <N>          master seed (default 3); every case replays from
                      (seed, index) alone
  --cases <K>         number of cases (default 1000); in mutation-smoke
                      mode, the per-mutant hunting budget (default 64)
  --mutation-smoke    inject known-bad schedulers and verify the oracle
                      catches every one (certifies the harness itself)
  --streaming         run the STREAMING regime instead: certify the
                      streaming schedulers by invariants alone (Prop. 2.3
                      feasibility, replay-cost identity, Prop. 2.4 bound
                      gap recorded) — no exact cross-check
  --multi             run the MULTI regime instead: certify the
                      multiprocessor schedulers (replay, per-processor
                      budgets, I/O and makespan floors, p=1 byte-identity
                      to greedy-belady, monotonicity in p, work
                      conservation)
  --procs <LIST>      comma-separated processor counts for --multi
                      (default 1,2,4)
  --max-states <N>    exact-solver state cap per probe (default 2000000)
  --heuristic <H>     exact A* lower bound: none | remaining-work |
                      forced-reload | landmark-pdb (default landmark-pdb)
  --no-dominance      disable the exact solver's dominance pruning
  --no-symmetry       disable the exact solver's symmetry reduction
                      (twin + WL orbits)
  --wl-symmetry <V>   on | off: the WL-orbit lever on top of twin
                      symmetry (default on; on conflicts with
                      --no-symmetry)
  --no-partial-expansion
                      materialize every successor (disable PEA*)
  --failure-out <F>   also write failing shrunk cases to this file
  --telemetry <F>     record run counters to this JSONL file (schema
                      pebblyn-telemetry/v1) and cross-check the report's
                      exact-state total against the solver's own counter
  --help              print this help
";

struct Args {
    seed: u64,
    cases: Option<u64>,
    mutation_smoke: bool,
    streaming: bool,
    multi: bool,
    procs: Vec<usize>,
    max_states: usize,
    heuristic: Heuristic,
    dominance: bool,
    symmetry: bool,
    wl_symmetry: Option<bool>,
    partial_expansion: bool,
    failure_out: Option<String>,
    telemetry: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 3,
        cases: None,
        mutation_smoke: false,
        streaming: false,
        multi: false,
        procs: DEFAULT_PROCS.to_vec(),
        max_states: 2_000_000,
        heuristic: Heuristic::default(),
        dominance: true,
        symmetry: true,
        wl_symmetry: None,
        partial_expansion: true,
        failure_out: None,
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--cases" => {
                args.cases = Some(
                    value("--cases")?
                        .parse()
                        .map_err(|e| format!("bad --cases: {e}"))?,
                );
            }
            "--max-states" => {
                args.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("bad --max-states: {e}"))?;
            }
            "--heuristic" => {
                let v = value("--heuristic")?;
                args.heuristic = Heuristic::parse(&v).ok_or_else(|| {
                    format!(
                        "bad --heuristic: {v:?} (expected none | remaining-work | \
                         forced-reload | landmark-pdb)"
                    )
                })?;
            }
            "--no-dominance" => args.dominance = false,
            "--no-symmetry" => args.symmetry = false,
            "--wl-symmetry" => {
                args.wl_symmetry = Some(match value("--wl-symmetry")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --wl-symmetry: {other:?} (on|off)")),
                });
            }
            "--no-partial-expansion" => args.partial_expansion = false,
            "--failure-out" => args.failure_out = Some(value("--failure-out")?),
            "--telemetry" => args.telemetry = Some(value("--telemetry")?),
            "--mutation-smoke" => args.mutation_smoke = true,
            "--streaming" => args.streaming = true,
            "--multi" => args.multi = true,
            "--procs" => {
                let v = value("--procs")?;
                args.procs = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&p| p >= 1)
                            .ok_or_else(|| {
                                format!("bad --procs: {v:?} (comma-separated counts >= 1)")
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if args.procs.is_empty() {
                    return Err("bad --procs: empty list".to_string());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.wl_symmetry == Some(true) && !args.symmetry {
        eprintln!(
            "error: --wl-symmetry on conflicts with --no-symmetry \
             (the WL lever extends twin symmetry)\n"
        );
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut cfg = Config {
        seed: args.seed,
        cases: args
            .cases
            .unwrap_or(if args.mutation_smoke { 64 } else { 1000 }),
        ..Config::default()
    };
    cfg.oracle = cfg
        .oracle
        .with_max_states(args.max_states)
        .with_heuristic(args.heuristic)
        .with_dominance(args.dominance)
        .with_symmetry(args.symmetry)
        .with_wl_symmetry(args.wl_symmetry.unwrap_or(args.symmetry))
        .with_partial_expansion(args.partial_expansion);

    if let Some(path) = &args.telemetry {
        telemetry::enable();
        match telemetry::JsonlSink::create(path) {
            Ok(sink) => telemetry::install_sink(Box::new(sink)),
            Err(e) => {
                eprintln!("error: cannot open telemetry file {path}: {e}\n");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if (args.mutation_smoke as u8) + (args.streaming as u8) + (args.multi as u8) > 1 {
        eprintln!("error: --mutation-smoke, --streaming and --multi are mutually exclusive\n");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if args.mutation_smoke {
        return smoke(&cfg);
    }
    if args.streaming {
        return streaming(&cfg, args.telemetry.is_some(), args.failure_out.as_deref());
    }
    if args.multi {
        return multi(
            &cfg,
            &args.procs,
            args.telemetry.is_some(),
            args.failure_out.as_deref(),
        );
    }

    println!(
        "conformance: seed {} · {} cases · exact state cap {} · heuristic {}{}{}{}{}",
        cfg.seed,
        cfg.cases,
        cfg.oracle.max_states(),
        cfg.oracle.heuristic().name(),
        if cfg.oracle.dominance() {
            ""
        } else {
            " · dominance off"
        },
        if cfg.oracle.symmetry() {
            ""
        } else {
            " · symmetry off"
        },
        if cfg.oracle.symmetry() && cfg.oracle.wl_symmetry() {
            ""
        } else {
            " · wl orbits off"
        },
        if cfg.oracle.partial_expansion() {
            ""
        } else {
            " · partial expansion off"
        }
    );
    let report = run(&cfg);
    println!(
        "checked {} cases / {} budget probes · {} exact-certified · {} exact-skipped (state cap) · {} states expanded",
        report.cases, report.budgets, report.exact_certified, report.exact_skipped, report.exact_states
    );

    if report.is_clean() {
        if args.telemetry.is_some() {
            // On a clean run (no shrinking re-runs to skew the counter) the
            // report's exact-state total and the solver's own telemetry
            // counter account for the same solves; CI pins this invariant.
            let counted = telemetry::counter(telemetry::Counter::StatesExpanded);
            if counted != report.exact_states as u64 {
                println!(
                    "TELEMETRY MISMATCH: report counted {} exact states but the solver's \
                     telemetry counter reads {counted}",
                    report.exact_states
                );
                telemetry::flush_run("conformance");
                return ExitCode::FAILURE;
            }
            println!("telemetry: states_expanded counter matches the report ({counted})");
            telemetry::flush_run("conformance");
        }
        println!("OK: zero violations");
        return ExitCode::SUCCESS;
    }
    if args.telemetry.is_some() {
        telemetry::flush_run("conformance");
    }

    let mut body = String::new();
    for f in &report.failures {
        body.push_str(&f.to_string());
        body.push('\n');
    }
    println!("{} FAILING CASE(S):\n{body}", report.failures.len());
    println!(
        "reproduce any case with: cargo run --release -p pebblyn-conformance -- --seed {} --cases {}",
        cfg.seed, cfg.cases
    );
    if let Some(path) = &args.failure_out {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("failing shrunk cases written to {path}");
        }
    }
    ExitCode::FAILURE
}

fn streaming(cfg: &Config, telemetry_on: bool, failure_out: Option<&str>) -> ExitCode {
    println!(
        "conformance (STREAMING regime): seed {} · {} cases · invariant-only, bound gap recorded",
        cfg.seed, cfg.cases
    );
    let report = run_streaming(cfg);
    println!(
        "checked {} cases / {} probes ({} feasible) · Prop. 2.4 gap: worst {:.4}x · mean {:.4}x",
        report.cases, report.probes, report.feasible_probes, report.worst_gap, report.mean_gap
    );
    if telemetry_on {
        telemetry::flush_run("conformance-streaming");
    }
    if report.is_clean() {
        println!("OK: zero violations");
        return ExitCode::SUCCESS;
    }
    let mut body = String::new();
    for f in &report.failures {
        body.push_str(&f.to_string());
        body.push('\n');
    }
    println!("{} FAILING CASE(S):\n{body}", report.failures.len());
    println!(
        "reproduce with: cargo run --release -p pebblyn-conformance -- --streaming --seed {} --cases {}",
        cfg.seed, cfg.cases
    );
    if let Some(path) = failure_out {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("failing shrunk cases written to {path}");
        }
    }
    ExitCode::FAILURE
}

fn multi(cfg: &Config, procs: &[usize], telemetry_on: bool, failure_out: Option<&str>) -> ExitCode {
    let procs_label = procs
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "conformance (MULTI regime): seed {} · {} cases · procs {{{procs_label}}}",
        cfg.seed, cfg.cases
    );
    let report = run_multi(cfg, procs);
    println!(
        "checked {} cases / {} probes · {} communication moves observed",
        report.cases, report.probes, report.comm_moves
    );
    if telemetry_on {
        telemetry::flush_run("conformance-multi");
    }
    if report.is_clean() {
        println!("OK: zero violations");
        return ExitCode::SUCCESS;
    }
    let mut body = String::new();
    for f in &report.failures {
        body.push_str(&f.to_string());
        body.push('\n');
    }
    println!("{} FAILING CASE(S):\n{body}", report.failures.len());
    println!(
        "reproduce with: cargo run --release -p pebblyn-conformance -- --multi --seed {} --cases {} --procs {procs_label}",
        cfg.seed, cfg.cases
    );
    if let Some(path) = failure_out {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("failing shrunk cases written to {path}");
        }
    }
    ExitCode::FAILURE
}

fn smoke(cfg: &Config) -> ExitCode {
    println!(
        "mutation smoke: seed {} · up to {} cases per mutant",
        cfg.seed, cfg.cases
    );
    let reports = mutation_smoke(cfg);
    let mut escaped = 0usize;
    for r in &reports {
        if r.caught {
            let ex = r.example.as_ref().expect("caught implies example");
            println!(
                "CAUGHT {} after {} case(s); shrunk to {} nodes at budget {}",
                r.name,
                r.cases_tried,
                ex.shrunk.graph.len(),
                ex.shrunk.budget
            );
            println!("  {}", ex.shrunk_detail);
        } else {
            escaped += 1;
            println!(
                "ESCAPED {} — survived {} cases undetected (the net has a hole)",
                r.name, r.cases_tried
            );
        }
    }
    telemetry::flush_run("mutation-smoke");
    if escaped == 0 {
        println!("OK: all {} injected mutants caught", reports.len());
        ExitCode::SUCCESS
    } else {
        println!("{escaped} mutant(s) escaped");
        ExitCode::FAILURE
    }
}
