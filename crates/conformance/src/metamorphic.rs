//! Metamorphic relations: transforms of a case whose effect on cost is
//! known *a priori*, so the transformed instance needs no independent
//! oracle.
//!
//! Three transforms:
//!
//! * **Uniform weight scaling** — multiplying every node weight by `s`
//!   turns any schedule valid at budget `b` into one valid at `s·b` with
//!   exactly `s×` the cost and peak (the game rules are linear in the
//!   weights), and scales the exact optimum by the same factor.
//! * **Node relabeling (isomorphism)** — rebuilding the graph under a
//!   random node permutation and pushing a schedule through
//!   [`Schedule::map_nodes`] must preserve validity, cost, and peak
//!   exactly; the exact optimum is isomorphism-invariant.
//! * **IO-scale symmetry** — the exact solver under uniform I/O scales
//!   `(a, a)` must report exactly `a×` its unscaled optimum, and under
//!   asymmetric scales `(ls, ss)` must land between `min(ls, ss)×` the
//!   unscaled optimum and the scaled replay cost of the unscaled optimal
//!   schedule.
//!
//! All three run on a single mid-sweep budget per case (they multiply the
//! exact-solver work, which dominates runtime).

use crate::oracle::{CaseOutcome, OracleConfig, Violation};
use crate::rng::SplitRng;
use pebblyn_core::{min_feasible_budget, validate_moves, Cdag, CdagBuilder, NodeId, Weight};
use pebblyn_graphs::AnyGraph;
use pebblyn_schedulers::Scheduler;
use rand::Rng;

/// Rebuild `g` with every weight multiplied by `s`.
pub fn scale_weights(g: &Cdag, s: Weight) -> Cdag {
    let mut b = CdagBuilder::with_capacity(g.len());
    for v in g.nodes() {
        b.node(g.weight(v) * s, g.name(v).to_string());
    }
    for v in g.nodes() {
        for &p in g.preds(v) {
            b.edge(p, v);
        }
    }
    b.build().expect("scaling weights preserves structure")
}

/// Rebuild `g` with node identities permuted by `perm` (old id `v` becomes
/// new id `perm[v]`).
pub fn permute_nodes(g: &Cdag, perm: &[u32]) -> Cdag {
    let mut inv = vec![0u32; g.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    let mut b = CdagBuilder::with_capacity(g.len());
    for &old in &inv {
        let old = NodeId(old);
        b.node(g.weight(old), g.name(old).to_string());
    }
    for v in g.nodes() {
        for &p in g.preds(v) {
            b.edge(NodeId(perm[p.index()]), NodeId(perm[v.index()]));
        }
    }
    b.build().expect("a permuted DAG is still a DAG")
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn random_perm(n: usize, rng: &mut SplitRng) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Run all metamorphic relations for one graph at one mid-sweep budget.
///
/// `exact_series[i]` is the known exact optimum at `probes[i]` (when the
/// exhaustive pass computed one).
#[allow(clippy::too_many_arguments)]
pub fn check(
    g: &Cdag,
    _label: &str,
    probes: &[Weight],
    schedulers: &[&dyn Scheduler],
    cfg: &OracleConfig,
    exact_series: &[Option<Weight>],
    rng: &mut SplitRng,
    out: &mut CaseOutcome,
) {
    let minb = min_feasible_budget(g);
    let feasible: Vec<usize> = (0..probes.len()).filter(|&i| probes[i] >= minb).collect();
    let Some(&pi) = feasible.get(feasible.len() / 2) else {
        return;
    };
    let b = probes[pi];
    let exact_at_b = exact_series[pi];

    let s: Weight = rng.gen_range(2..=4);
    let scaled = scale_weights(g, s);
    let perm = random_perm(g.len(), rng);
    let permuted = permute_nodes(g, &perm);

    let any = AnyGraph::custom("meta-orig", g.clone());
    let push = |out: &mut CaseOutcome, check: &'static str, sched: &str, detail: String| {
        out.violations.push(Violation {
            check,
            scheduler: sched.to_string(),
            budget: b,
            detail,
        });
    };

    for sch in schedulers {
        if !sch.supports(&any) {
            continue;
        }
        let Ok(schedule) = sch.schedule(&any, b) else {
            continue;
        };
        let Ok(stats) = validate_moves(g, b, schedule.iter()) else {
            continue; // already reported by the main oracle pass
        };

        // Weight scaling: the *same move sequence* on the scaled graph.
        match validate_moves(&scaled, s * b, schedule.iter()) {
            Ok(st) => {
                if st.cost != s * stats.cost || st.peak_red_weight != s * stats.peak_red_weight {
                    push(
                        out,
                        "meta-weight-scaling",
                        sch.name(),
                        format!(
                            "x{s} weights: expected cost {} peak {}, got cost {} peak {}",
                            s * stats.cost,
                            s * stats.peak_red_weight,
                            st.cost,
                            st.peak_red_weight
                        ),
                    );
                }
            }
            Err(e) => push(
                out,
                "meta-weight-scaling",
                sch.name(),
                format!(
                    "schedule invalid on x{s}-scaled graph at budget {}: {e}",
                    s * b
                ),
            ),
        }

        // Isomorphism: the relabeled schedule on the relabeled graph.
        let mapped = schedule.map_nodes(|v| NodeId(perm[v.index()]));
        match validate_moves(&permuted, b, mapped.iter()) {
            Ok(st) => {
                if st.cost != stats.cost || st.peak_red_weight != stats.peak_red_weight {
                    push(
                        out,
                        "meta-isomorphism",
                        sch.name(),
                        format!(
                            "relabeled replay: cost {} peak {} vs original cost {} peak {}",
                            st.cost, st.peak_red_weight, stats.cost, stats.peak_red_weight
                        ),
                    );
                }
            }
            Err(e) => push(
                out,
                "meta-isomorphism",
                sch.name(),
                format!("relabeled schedule invalid on permuted graph: {e}"),
            ),
        }
    }

    // Exact-solver covariances, where the exhaustive pass certified b.
    // Every search here reports its expansions into `out.exact_states`
    // (capped or not), keeping the report total equal to the telemetry
    // `states_expanded` counter on clean runs.
    let Some(opt) = exact_at_b else { return };
    let solver = cfg.solver();

    match solver.solve(&scaled, s * b) {
        Ok(sol) => {
            out.exact_states += sol.stats.expanded;
            let c = sol.cost;
            if c != Some(s * opt) {
                push(
                    out,
                    "meta-exact-weight-scaling",
                    "exact",
                    format!(
                        "exact on x{s}-scaled graph: {c:?}, expected {:?}",
                        Some(s * opt)
                    ),
                );
            }
        }
        Err(e) => {
            out.exact_states += e.states_expanded();
            out.exact_skipped += 1;
        }
    }

    match solver.solve(&permuted, b) {
        Ok(sol) => {
            out.exact_states += sol.stats.expanded;
            let c = sol.cost;
            if c != Some(opt) {
                push(
                    out,
                    "meta-exact-isomorphism",
                    "exact",
                    format!("exact on permuted graph: {c:?}, expected {:?}", Some(opt)),
                );
            }
        }
        Err(e) => {
            out.exact_states += e.states_expanded();
            out.exact_skipped += 1;
        }
    }

    // IO-scale symmetry: uniform (a, a) scales the optimum exactly; an
    // asymmetric (ls, ss) optimum is bracketed by min-scale x optimum below
    // and the scaled replay of the symmetric optimal schedule above.
    let a: Weight = rng.gen_range(2..=3);
    match solver.with_io_scales(a, a).solve(g, b) {
        Ok(sol) => {
            out.exact_states += sol.stats.expanded;
            let c = sol.cost;
            if c != Some(a * opt) {
                push(
                    out,
                    "meta-io-scale-uniform",
                    "exact",
                    format!(
                        "exact at io scales ({a},{a}): {c:?}, expected {:?}",
                        Some(a * opt)
                    ),
                );
            }
        }
        Err(e) => {
            out.exact_states += e.states_expanded();
            out.exact_skipped += 1;
        }
    }

    let (ls, ss): (Weight, Weight) = (1, rng.gen_range(2..=4));
    let asym_sol = solver.with_io_scales(ls, ss).solve(g, b);
    let sym_sol = solver.solve_with_schedule(g, b);
    for r in [&asym_sol, &sym_sol] {
        match r {
            Ok(sol) => out.exact_states += sol.stats.expanded,
            Err(e) => out.exact_states += e.states_expanded(),
        }
    }
    match (asym_sol, sym_sol) {
        (Ok(asym), Ok(sym)) => match (asym.cost, sym.cost.zip(sym.schedule)) {
            (Some(asym), Some((_, sym_sched))) => {
                let upper = sym_sched.scaled_io_cost(g, ls, ss);
                let lower = ls.min(ss) * opt;
                if asym < lower || asym > upper {
                    push(
                        out,
                        "meta-io-scale-asymmetric",
                        "exact",
                        format!("asymmetric ({ls},{ss}) optimum {asym} outside [{lower}, {upper}]"),
                    );
                }
            }
            (None, _) => push(
                out,
                "meta-io-scale-asymmetric",
                "exact",
                "asymmetric solver infeasible where the symmetric one succeeded".to_string(),
            ),
            _ => {}
        },
        _ => out.exact_skipped += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn scaling_multiplies_every_weight() {
        let g = generate(5, 0).graph;
        let s = scale_weights(&g, 3);
        assert_eq!(s.len(), g.len());
        assert_eq!(s.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(s.weight(v), 3 * g.weight(v));
        }
        assert_eq!(s.total_weight(), 3 * g.total_weight());
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = generate(5, 2).graph;
        let mut rng = SplitRng::new(99);
        let perm = random_perm(g.len(), &mut rng);
        let p = permute_nodes(&g, &perm);
        assert_eq!(p.len(), g.len());
        assert_eq!(p.edge_count(), g.edge_count());
        assert_eq!(p.total_weight(), g.total_weight());
        for v in g.nodes() {
            let pv = NodeId(perm[v.index()]);
            assert_eq!(p.weight(pv), g.weight(v));
            assert_eq!(p.in_degree(pv), g.in_degree(v));
            assert_eq!(p.out_degree(pv), g.out_degree(v));
        }
    }

    #[test]
    fn identity_permutation_roundtrips() {
        let g = generate(5, 1).graph;
        let perm: Vec<u32> = (0..g.len() as u32).collect();
        assert_eq!(permute_nodes(&g, &perm), g);
    }
}
