//! Greedy test-case shrinking.
//!
//! Given a failing `(graph, budget)` pair and a predicate that re-checks
//! whether a candidate still fails, the shrinker greedily applies four
//! reductions to a fixpoint:
//!
//! 1. **drop a node** (with its incident edges),
//! 2. **drop an edge** (which often unblocks further node removals),
//! 3. **reduce a node weight** (to 1, else halve),
//! 4. **reduce the budget** (binary-style steps down, then by 1).
//!
//! Each candidate is accepted only if the predicate still reports failure,
//! so the result is a locally-minimal reproduction of the same defect.
//! The predicate runs the full oracle, which is cheap at shrunk sizes.

use pebblyn_core::{Cdag, CdagBuilder, NodeId, Weight};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized graph.
    pub graph: Cdag,
    /// The minimized budget.
    pub budget: Weight,
    /// Number of accepted reduction steps.
    pub steps: usize,
}

/// Rebuild the subgraph of `g` induced by `keep`, optionally skipping one
/// edge (by `(node, pred)` enumeration index).  Nodes that end up isolated
/// are cascaded away — the model forbids nodes that are both source and
/// sink, and a shrinker that rejected every such candidate would get stuck
/// on disconnected components.  Returns `None` when nothing is left.
fn rebuild(g: &Cdag, mut keep: Vec<bool>, skip_edge: Option<usize>) -> Option<Cdag> {
    // Cascade: drop isolated nodes until the kept edge set covers every
    // kept node.
    loop {
        let mut deg = vec![0usize; g.len()];
        let mut idx = 0usize;
        for u in g.nodes() {
            for &p in g.preds(u) {
                let skipped = skip_edge == Some(idx);
                idx += 1;
                if skipped || !keep[u.index()] || !keep[p.index()] {
                    continue;
                }
                deg[u.index()] += 1;
                deg[p.index()] += 1;
            }
        }
        let mut changed = false;
        for v in 0..g.len() {
            if keep[v] && deg[v] == 0 {
                keep[v] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if !keep.iter().any(|&k| k) {
        return None;
    }

    let mut new_id = vec![u32::MAX; g.len()];
    let mut b = CdagBuilder::with_capacity(g.len());
    for u in g.nodes() {
        if keep[u.index()] {
            new_id[u.index()] = b.len() as u32;
            b.node(g.weight(u), g.name(u).to_string());
        }
    }
    let mut idx = 0usize;
    for u in g.nodes() {
        for &p in g.preds(u) {
            let skipped = skip_edge == Some(idx);
            idx += 1;
            if skipped || !keep[u.index()] || !keep[p.index()] {
                continue;
            }
            b.edge(NodeId(new_id[p.index()]), NodeId(new_id[u.index()]));
        }
    }
    b.build().ok()
}

/// Rebuild `g` without node `v` (plus any nodes the removal isolates).
/// Returns `None` when nothing valid remains.
pub fn remove_node(g: &Cdag, v: NodeId) -> Option<Cdag> {
    if g.len() <= 1 {
        return None;
    }
    let mut keep = vec![true; g.len()];
    keep[v.index()] = false;
    rebuild(g, keep, None)
}

/// Rebuild `g` without its `k`-th edge (in `(node, pred)` enumeration
/// order), cascading away any node the removal isolates.
pub fn remove_edge(g: &Cdag, k: usize) -> Option<Cdag> {
    rebuild(g, vec![true; g.len()], Some(k))
}

/// Rebuild `g` with node `v`'s weight set to `w`.
pub fn set_weight(g: &Cdag, v: NodeId, w: Weight) -> Option<Cdag> {
    if w == 0 {
        return None;
    }
    let mut b = CdagBuilder::with_capacity(g.len());
    for u in g.nodes() {
        b.node(if u == v { w } else { g.weight(u) }, g.name(u).to_string());
    }
    for u in g.nodes() {
        for &p in g.preds(u) {
            b.edge(p, u);
        }
    }
    b.build().ok()
}

/// Greedily minimize a failing `(graph, budget)` pair.
///
/// `still_fails` must return `true` for the input pair; every accepted
/// reduction preserves that property.
pub fn shrink(graph: &Cdag, budget: Weight, still_fails: impl Fn(&Cdag, Weight) -> bool) -> Shrunk {
    let mut g = graph.clone();
    let mut b = budget;
    let mut steps = 0usize;

    loop {
        let mut progress = false;

        // 1. Drop nodes, scanning from the back (late nodes are usually the
        //    easiest to excise without orphaning others).
        let mut v = g.len();
        while v > 0 {
            v -= 1;
            if let Some(h) = remove_node(&g, NodeId(v as u32)) {
                if still_fails(&h, b) {
                    g = h;
                    steps += 1;
                    progress = true;
                    v = v.min(g.len()); // ids shifted; continue from the same position
                }
            }
        }

        // 2. Drop edges: removing a dependency often unblocks further node
        //    removals that would otherwise isolate a neighbor.
        let mut k = g.edge_count();
        while k > 0 {
            k -= 1;
            if let Some(h) = remove_edge(&g, k) {
                if still_fails(&h, b) {
                    g = h;
                    steps += 1;
                    progress = true;
                    k = k.min(g.edge_count());
                }
            }
        }

        // 3. Reduce weights: straight to 1, else halve, else a unit step
        //    (halving alone strands odd weights — 3/2 is already 1).
        for v in 0..g.len() {
            let v = NodeId(v as u32);
            let w = g.weight(v);
            if w <= 1 {
                continue;
            }
            for cand in [1, w / 2, w - 1] {
                if cand == 0 || cand >= w {
                    continue;
                }
                if let Some(h) = set_weight(&g, v, cand) {
                    if still_fails(&h, b) {
                        g = h;
                        steps += 1;
                        progress = true;
                        break;
                    }
                }
            }
        }

        // 4. Reduce the budget: halving first, then unit steps.
        while b > 1 && still_fails(&g, b / 2) {
            b /= 2;
            steps += 1;
            progress = true;
        }
        while b > 0 && still_fails(&g, b - 1) {
            b -= 1;
            steps += 1;
            progress = true;
        }

        if !progress {
            pebblyn_telemetry::add(pebblyn_telemetry::Counter::ShrinkSteps, steps as u64);
            return Shrunk {
                graph: g,
                budget: b,
                steps,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use pebblyn_core::min_feasible_budget;

    #[test]
    fn remove_node_shifts_ids() {
        let g = generate(13, 0).graph; // a chain
        let n = g.len();
        let h = remove_node(&g, NodeId(0)).expect("chain tail is removable");
        assert_eq!(h.len(), n - 1);
    }

    #[test]
    fn shrinks_a_weight_predicate_to_the_minimum() {
        // Predicate: "some node has weight >= 2". Minimal failing case is a
        // single heavy edge pair — 2 nodes, one weight-2 node.
        let g = generate(17, 3).graph; // INVARIANT profile: big and heavy
        let total = g.total_weight();
        let out = shrink(&g, total, |h, _| h.nodes().any(|v| h.weight(v) >= 2));
        assert!(out.graph.len() <= 2, "left {} nodes", out.graph.len());
        assert!(out.graph.nodes().any(|v| out.graph.weight(v) == 2));
        assert_eq!(out.budget, 0);
        assert!(out.steps > 0);
    }

    #[test]
    fn shrink_preserves_failure_under_oracle_style_predicate() {
        // Predicate tied to both graph and budget: budget below feasibility.
        let g = generate(19, 1).graph;
        let minb = min_feasible_budget(&g);
        let out = shrink(&g, minb.saturating_sub(1), |h, b| {
            b < min_feasible_budget(h)
        });
        assert!(out.budget < min_feasible_budget(&out.graph));
        assert!(out.graph.len() <= 2);
    }
}
