//! Splittable deterministic PRNG for reproducible fuzz cases.
//!
//! Every generated test case must be reproducible from a printed `(seed,
//! index)` pair, *independently of how many random draws earlier cases
//! consumed and of the order cases are executed in* (the harness runs
//! cases on a worker pool).  A linear stream cannot give that; a
//! *splittable* generator can: each case derives its own statistically
//! independent stream from the master seed and the case index alone.
//!
//! The implementation is SplitMix64 with a per-stream odd gamma — the
//! construction from Steele, Lea & Flood, *Fast Splittable Pseudorandom
//! Number Generators* (OOPSLA 2014).  [`SplitRng::split`] forks a child
//! stream whose future output is independent of the parent's; splitting
//! never perturbs the parent's own sequence beyond the two draws used to
//! seed the child.

use rand::RngCore;

/// Weyl-sequence increment: the golden ratio in 64-bit fixed point.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Variant finalizer used to derive gammas, so the gamma stream is not
/// correlated with the value stream.
#[inline]
fn mix_gamma(z: u64) -> u64 {
    let z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    let z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    // Gammas must be odd; fix low bit.
    (z ^ (z >> 33)) | 1
}

/// A splittable SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitRng {
    state: u64,
    gamma: u64,
}

impl SplitRng {
    /// The root stream for a master seed.
    pub fn new(seed: u64) -> Self {
        SplitRng {
            state: mix64(seed),
            gamma: GOLDEN_GAMMA,
        }
    }

    /// The stream for case `index` under `seed` — a pure function of the
    /// pair, so cases replay identically regardless of execution order.
    pub fn for_case(seed: u64, index: u64) -> Self {
        SplitRng {
            state: mix64(seed ^ mix64(index.wrapping_mul(GOLDEN_GAMMA))),
            gamma: mix_gamma(seed.wrapping_add(index)),
        }
    }

    /// Fork a statistically independent child stream.
    pub fn split(&mut self) -> SplitRng {
        let state = mix64(self.raw());
        let gamma = mix_gamma(self.raw());
        SplitRng { state, gamma }
    }

    #[inline]
    fn raw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(self.gamma);
        mix64(self.state)
    }
}

impl RngCore for SplitRng {
    fn next_u64(&mut self) -> u64 {
        self.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn case_streams_are_order_independent() {
        let a1 = SplitRng::for_case(42, 7).next_u64();
        // Interleave arbitrary other draws — case 7's stream is unaffected.
        let _ = SplitRng::for_case(42, 3).next_u64();
        let a2 = SplitRng::for_case(42, 7).next_u64();
        assert_eq!(a1, a2);
    }

    #[test]
    fn distinct_cases_and_seeds_diverge() {
        let a = SplitRng::for_case(42, 0).next_u64();
        let b = SplitRng::for_case(42, 1).next_u64();
        let c = SplitRng::for_case(43, 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn split_children_are_independent_of_parent_continuation() {
        let mut parent = SplitRng::new(1);
        let mut child = parent.split();
        let child_draws: Vec<u64> = (0..4).map(|_| child.next_u64()).collect();

        // Re-derive: the child only depends on the parent's state at the
        // split point, not on what the parent draws afterwards.
        let mut parent2 = SplitRng::new(1);
        let mut child2 = parent2.split();
        let _ = parent2.next_u64();
        let draws2: Vec<u64> = (0..4).map(|_| child2.next_u64()).collect();
        assert_eq!(child_draws, draws2);
    }

    #[test]
    fn works_as_rand_rng() {
        let mut r = SplitRng::new(9);
        for _ in 0..100 {
            let v = r.gen_range(1u64..=5);
            assert!((1..=5).contains(&v));
        }
        let p = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&p), "gen_bool badly biased: {p}");
    }
}
