//! The differential oracle: every relation a correct scheduler stack must
//! satisfy on one `(graph, budget sweep)` instance.
//!
//! For each generated graph the oracle runs every applicable registered
//! [`Scheduler`] across a feasibility-aware budget sweep and checks the
//! full lattice of relations:
//!
//! 1. **Feasibility** — below [`min_feasible_budget`] every scheduler and
//!    the exact solver decline; at or above it, `naive` (the Prop. 2.3
//!    witness) and the exact solver must succeed.
//! 2. **Validity** — every emitted schedule replays cleanly through
//!    [`validate_moves`] under the *requested* budget.
//! 3. **Cost agreement** — the scheduler's `min_cost` claim equals the
//!    replayed cost; [`occupancy_trace`]'s peak equals the validator's
//!    peak and respects the budget; when enabled, the executable
//!    [`Machine`] measures the same I/O bits and peak while checking
//!    output values against a schedule-free reference evaluation.
//! 4. **Optimality lattice** — the exact optimum is a lower bound on every
//!    heuristic, *equals* the DPs wherever they are certifiably optimal
//!    (see [`certified_optimal`]), sits at or above the algorithmic lower
//!    bound, and reaches exactly the lower bound at ample budget.
//! 5. **Monotonicity** — schedulers advertising [`Scheduler::monotone`]
//!    and the exact solver must be non-increasing in budget.
//!
//! Violations are *collected*, not panicked, so the harness can shrink the
//! offending case before reporting.

use crate::gen::TestCase;
use pebblyn_core::{
    algorithmic_lower_bound, min_feasible_budget, occupancy_trace, validate_moves, Cdag, Heuristic,
    Weight,
};
use pebblyn_exact::ExactSolver;
use pebblyn_graphs::AnyGraph;
use pebblyn_machine::{Machine, Op, OpTable};
use pebblyn_schedulers::{kary, ScheduleError, Scheduler};
use pebblyn_telemetry as telemetry;
use rand::Rng;
use std::fmt;

/// Is `scheduler` *certifiably* optimal on this graph, so the oracle may
/// demand equality with the exhaustive optimum (not merely `>=`)?
///
/// `dwt-opt` is provably optimal on every graph it supports.  The k-ary
/// Eq. (6) DP is optimal only within *contiguous* subtree evaluations, so
/// equality is asserted just where that restriction is provably lossless
/// ([`kary::contiguous_evaluation_safe`]); on other weighted in-trees the
/// DP can be genuinely suboptimal — the fuzzer shrank a 7-node witness,
/// pinned in `kary`'s unit tests — and only the `>=` bound applies.
pub fn certified_optimal(scheduler: &str, g: &Cdag) -> bool {
    match scheduler {
        "dwt-opt" => true,
        "kary" => kary::contiguous_evaluation_safe(g),
        _ => false,
    }
}

/// Oracle tuning knobs.
///
/// Constructed with [`OracleConfig::default`] and refined through the
/// `with_*` builder methods; the fields themselves are fully private so
/// configuration flows through one audited surface (each has a matching
/// getter).
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Run the exact solver when the graph has at most this many nodes.
    exhaustive_max_nodes: usize,
    /// Exact-solver expanded-state cap; budgets whose search exceeds it are
    /// downgraded to invariant-only (counted in `exact_skipped`).
    max_states: usize,
    /// Lower bound guiding the exact A\* (for pruning ablations).
    heuristic: Heuristic,
    /// Enable the exact solver's dominance pruning (for ablations).
    dominance: bool,
    /// Enable twin-orbit symmetry reduction (for ablations).
    symmetry: bool,
    /// Enable the WL-orbit lever on top of twin symmetry (for ablations).
    wl_symmetry: bool,
    /// Enable partial expansion — PEA* deferral (for ablations).
    partial_expansion: bool,
    /// Cross-check every schedule on the executable machine with real
    /// values (validates outputs against a reference evaluation).
    machine_replay: bool,
    /// Apply the metamorphic transforms (weight scaling, isomorphism,
    /// IO-scale symmetry).
    metamorphic: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            exhaustive_max_nodes: crate::gen::EXHAUSTIVE.max_nodes,
            max_states: 2_000_000,
            heuristic: Heuristic::default(),
            dominance: true,
            symmetry: true,
            wl_symmetry: true,
            partial_expansion: true,
            machine_replay: true,
            metamorphic: true,
        }
    }
}

impl OracleConfig {
    /// The exact solver this configuration asks for.
    pub fn solver(&self) -> ExactSolver {
        ExactSolver::with_max_states(self.max_states)
            .with_heuristic(self.heuristic)
            .with_dominance(self.dominance)
            .with_symmetry(self.symmetry)
            .with_wl_symmetry(self.wl_symmetry)
            .with_partial_expansion(self.partial_expansion)
    }

    /// Only run the exact solver on graphs with at most `n` nodes.
    pub fn with_exhaustive_max_nodes(mut self, n: usize) -> Self {
        self.exhaustive_max_nodes = n;
        self
    }

    /// Cap the exact solver at `n` expanded states per probe.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Pick the lower bound guiding the exact A\*.
    pub fn with_heuristic(mut self, h: Heuristic) -> Self {
        self.heuristic = h;
        self
    }

    /// Enable or disable the exact solver's dominance pruning.
    pub fn with_dominance(mut self, on: bool) -> Self {
        self.dominance = on;
        self
    }

    /// Enable or disable twin-orbit symmetry reduction.
    pub fn with_symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Enable or disable the WL-orbit lever (inert without `symmetry`).
    pub fn with_wl_symmetry(mut self, on: bool) -> Self {
        self.wl_symmetry = on;
        self
    }

    /// Enable or disable partial expansion (PEA*).
    pub fn with_partial_expansion(mut self, on: bool) -> Self {
        self.partial_expansion = on;
        self
    }

    /// Enable or disable machine replay cross-checks.
    pub fn with_machine_replay(mut self, on: bool) -> Self {
        self.machine_replay = on;
        self
    }

    /// Enable or disable the metamorphic transforms.
    pub fn with_metamorphic(mut self, on: bool) -> Self {
        self.metamorphic = on;
        self
    }

    /// The configured expanded-state cap.
    pub fn max_states(&self) -> usize {
        self.max_states
    }

    /// The configured A\* heuristic.
    pub fn heuristic(&self) -> Heuristic {
        self.heuristic
    }

    /// Whether dominance pruning is enabled.
    pub fn dominance(&self) -> bool {
        self.dominance
    }

    /// Whether twin-orbit symmetry reduction is enabled.
    pub fn symmetry(&self) -> bool {
        self.symmetry
    }

    /// Whether the WL-orbit lever is enabled.
    pub fn wl_symmetry(&self) -> bool {
        self.wl_symmetry
    }

    /// Whether partial expansion is enabled.
    pub fn partial_expansion(&self) -> bool {
        self.partial_expansion
    }

    /// The configured exhaustive-regime node ceiling.
    pub fn exhaustive_max_nodes(&self) -> usize {
        self.exhaustive_max_nodes
    }

    /// Whether machine replay cross-checks are enabled.
    pub fn machine_replay(&self) -> bool {
        self.machine_replay
    }

    /// Whether the metamorphic transforms are enabled.
    pub fn metamorphic(&self) -> bool {
        self.metamorphic
    }
}

/// One broken relation, with enough context to reproduce and attribute it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which oracle relation failed (stable identifier).
    pub check: &'static str,
    /// The scheduler at fault (`"exact"` / `"oracle"` for solver-level
    /// relations).
    pub scheduler: String,
    /// The budget probed when the relation broke.
    pub budget: Weight,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] scheduler={} budget={}: {}",
            self.check, self.scheduler, self.budget, self.detail
        )
    }
}

/// Aggregate result of running the oracle on one case.
#[derive(Debug, Clone, Default)]
pub struct CaseOutcome {
    /// Budgets probed.
    pub budgets: usize,
    /// `(budget)` points certified against the exact optimum.
    pub exact_certified: usize,
    /// Budgets where the exact search hit the state cap and was skipped.
    pub exact_skipped: usize,
    /// Total states the exact solver expanded across this case's probes
    /// (including capped searches) — the cost of certification.
    pub exact_states: usize,
    /// All broken relations found (capped per case).
    pub violations: Vec<Violation>,
}

/// Cap on recorded violations per case — one bad scheduler fails most
/// relations at most budgets; a handful of samples is enough to shrink.
const MAX_VIOLATIONS_PER_CASE: usize = 8;

/// The feasibility-aware budget sweep for a graph: one infeasible probe,
/// the feasibility threshold, one step above it, the midpoint of the
/// interesting range, and the ample budget where every solver must reach
/// the lower bound.
pub fn budget_probes(g: &Cdag) -> Vec<Weight> {
    let minb = min_feasible_budget(g);
    let step = g.weight_gcd().max(1);
    let total = g.total_weight();
    let mut probes = vec![
        minb.saturating_sub(1),
        minb,
        minb + step,
        minb + (total.saturating_sub(minb) / 2) / step * step,
        total,
    ];
    probes.sort_unstable();
    probes.dedup();
    probes
}

/// Run the full oracle on one generated case.
pub fn check_case(
    case: &TestCase,
    schedulers: &[&dyn Scheduler],
    cfg: &OracleConfig,
    rng: &mut crate::rng::SplitRng,
) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    check_graph(&case.graph, &case.label(), schedulers, cfg, rng, &mut out);
    out
}

/// Run the oracle on a bare graph at every probe of its budget sweep.
/// (Also the shrinker's re-check entry point, via [`check_graph_at`].)
pub fn check_graph(
    g: &Cdag,
    label: &str,
    schedulers: &[&dyn Scheduler],
    cfg: &OracleConfig,
    rng: &mut crate::rng::SplitRng,
    out: &mut CaseOutcome,
) {
    check_graph_probes(g, label, &budget_probes(g), schedulers, cfg, rng, out);
}

/// Run the oracle on a bare graph at one fixed budget (shrinker re-check).
pub fn check_graph_at(
    g: &Cdag,
    budget: Weight,
    schedulers: &[&dyn Scheduler],
    cfg: &OracleConfig,
    rng: &mut crate::rng::SplitRng,
) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    check_graph_probes(g, "shrink", &[budget], schedulers, cfg, rng, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn check_graph_probes(
    g: &Cdag,
    label: &str,
    probes: &[Weight],
    schedulers: &[&dyn Scheduler],
    cfg: &OracleConfig,
    rng: &mut crate::rng::SplitRng,
    out: &mut CaseOutcome,
) {
    let any = AnyGraph::custom(label, g.clone());
    let minb = min_feasible_budget(g);
    let lb = algorithmic_lower_bound(g);
    let exhaustive = g.len() <= cfg.exhaustive_max_nodes;
    let solver = cfg.solver();

    let ops = lincom_ops(g);
    let inputs: Vec<f64> = (0..g.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let mut exact_costs: Vec<Option<Option<Weight>>> = Vec::with_capacity(probes.len());
    let mut per_sched_costs: Vec<Vec<Option<Weight>>> =
        vec![Vec::with_capacity(probes.len()); schedulers.len()];

    let push = |out: &mut CaseOutcome, v: Violation| {
        if out.violations.len() < MAX_VIOLATIONS_PER_CASE {
            out.violations.push(v);
        }
    };

    for &b in probes {
        out.budgets += 1;

        // Exact optimum for this budget, if exhaustible.
        let exact: Option<Option<Weight>> = if exhaustive {
            match solver.solve(g, b) {
                Ok(sol) => {
                    out.exact_certified += 1;
                    out.exact_states += sol.stats.expanded;
                    telemetry::incr(telemetry::Counter::ProbesCertified);
                    Some(sol.cost)
                }
                Err(e) => {
                    out.exact_skipped += 1;
                    out.exact_states += e.states_expanded();
                    telemetry::incr(telemetry::Counter::ProbesSkipped);
                    None
                }
            }
        } else {
            None
        };
        exact_costs.push(exact);

        if let Some(exact) = exact {
            // Prop. 2.3: the exact solver finds a schedule iff b >= minb.
            if exact.is_some() != (b >= minb) {
                push(
                    out,
                    Violation {
                        check: "exact-feasibility",
                        scheduler: "exact".into(),
                        budget: b,
                        detail: format!(
                            "exact={exact:?} but min_feasible_budget={minb} (existence criterion)"
                        ),
                    },
                );
            }
            if let Some(c) = exact {
                if c < lb {
                    push(
                        out,
                        Violation {
                            check: "exact-below-lower-bound",
                            scheduler: "exact".into(),
                            budget: b,
                            detail: format!("exact cost {c} < algorithmic lower bound {lb}"),
                        },
                    );
                }
                if b >= g.total_weight() && c != lb {
                    push(
                        out,
                        Violation {
                            check: "exact-ample-budget",
                            scheduler: "exact".into(),
                            budget: b,
                            detail: format!("at ample budget exact cost {c} != lower bound {lb}"),
                        },
                    );
                }
            }
        }

        for (si, s) in schedulers.iter().enumerate() {
            telemetry::incr(telemetry::Counter::Probes);
            let supported = s.supports(&any);
            let sched = s.schedule(&any, b);
            let claimed = s.min_cost(&any, b);

            if !supported {
                if sched.is_ok() || claimed.is_ok() {
                    push(
                        out,
                        Violation {
                            check: "unsupported-but-scheduled",
                            scheduler: s.name().into(),
                            budget: b,
                            detail: "supports() is false but schedule/min_cost succeeded".into(),
                        },
                    );
                }
                per_sched_costs[si].push(None);
                continue;
            }

            if b < minb && (sched.is_ok() || claimed.is_ok()) {
                push(
                    out,
                    Violation {
                        check: "phantom-feasibility",
                        scheduler: s.name().into(),
                        budget: b,
                        detail: format!(
                            "returned a result below the minimum feasible budget {minb}"
                        ),
                    },
                );
            }
            // A `min_feasible` hint asserts *no* algorithm can schedule
            // below it (Prop. 2.3), so it must equal the game minimum.
            for (method, r) in [
                ("schedule", sched.as_ref().err()),
                ("min_cost", claimed.as_ref().err()),
            ] {
                if let Some(ScheduleError::InfeasibleBudget {
                    min_feasible: Some(m),
                }) = r
                {
                    if *m != minb || b >= *m {
                        push(
                            out,
                            Violation {
                                check: "infeasible-hint-wrong",
                                scheduler: s.name().into(),
                                budget: b,
                                detail: format!(
                                    "{method} hinted min_feasible={m} but the game minimum is {minb}"
                                ),
                            },
                        );
                    }
                }
            }
            if b >= minb && s.name() == "naive" && sched.is_err() {
                push(
                    out,
                    Violation {
                        check: "witness-missing",
                        scheduler: s.name().into(),
                        budget: b,
                        detail: format!("the Prop. 2.3 witness must exist at budget {b} >= {minb}"),
                    },
                );
            }
            if sched.is_err() && claimed.is_ok() {
                push(
                    out,
                    Violation {
                        check: "cost-without-schedule",
                        scheduler: s.name().into(),
                        budget: b,
                        detail: format!("min_cost={claimed:?} but schedule() declined"),
                    },
                );
            }

            let Ok(sched) = sched else {
                per_sched_costs[si].push(None);
                continue;
            };

            // Independent replay under the *requested* budget.
            let stats = match validate_moves(g, b, sched.iter()) {
                Ok(st) => st,
                Err(e) => {
                    push(
                        out,
                        Violation {
                            check: "invalid-schedule",
                            scheduler: s.name().into(),
                            budget: b,
                            detail: format!("replay rejected: {e}"),
                        },
                    );
                    per_sched_costs[si].push(None);
                    continue;
                }
            };

            match claimed {
                Ok(c) if c == stats.cost => {}
                _ => push(
                    out,
                    Violation {
                        check: "cost-claim-mismatch",
                        scheduler: s.name().into(),
                        budget: b,
                        detail: format!(
                            "min_cost claims {claimed:?} but the replayed schedule costs {}",
                            stats.cost
                        ),
                    },
                ),
            }

            if stats.cost < lb {
                push(
                    out,
                    Violation {
                        check: "below-lower-bound",
                        scheduler: s.name().into(),
                        budget: b,
                        detail: format!("cost {} < algorithmic lower bound {lb}", stats.cost),
                    },
                );
            }

            // Trace agreement: the occupancy curve's peak is the
            // validator's peak and never exceeds the budget.
            let trace = occupancy_trace(g, &sched);
            let trace_peak = trace.iter().copied().max().unwrap_or(0);
            if trace_peak != stats.peak_red_weight || trace_peak > b {
                push(
                    out,
                    Violation {
                        check: "trace-peak-mismatch",
                        scheduler: s.name().into(),
                        budget: b,
                        detail: format!(
                            "occupancy_trace peak {trace_peak} vs validator peak {} (budget {b})",
                            stats.peak_red_weight
                        ),
                    },
                );
            }

            // Executable machine replay with real values.
            if cfg.machine_replay {
                match Machine::new(g, &ops, b).run(&sched, &inputs) {
                    Ok(report) => {
                        if report.io_bits != stats.cost
                            || report.peak_fast_bits != stats.peak_red_weight
                        {
                            push(
                                out,
                                Violation {
                                    check: "machine-disagrees",
                                    scheduler: s.name().into(),
                                    budget: b,
                                    detail: format!(
                                        "machine measured io={} peak={} vs validator cost={} peak={}",
                                        report.io_bits,
                                        report.peak_fast_bits,
                                        stats.cost,
                                        stats.peak_red_weight
                                    ),
                                },
                            );
                        }
                    }
                    Err(e) => push(
                        out,
                        Violation {
                            check: "machine-rejects",
                            scheduler: s.name().into(),
                            budget: b,
                            detail: format!("machine execution failed: {e}"),
                        },
                    ),
                }
            }

            // Differential: never beat the optimum; optimal DPs match it.
            if let Some(Some(opt)) = exact {
                if stats.cost < opt {
                    push(
                        out,
                        Violation {
                            check: "beats-exact",
                            scheduler: s.name().into(),
                            budget: b,
                            detail: format!(
                                "cost {} below the exhaustive optimum {opt}",
                                stats.cost
                            ),
                        },
                    );
                }
                if certified_optimal(s.name(), g) && stats.cost != opt {
                    push(
                        out,
                        Violation {
                            check: "optimal-dp-suboptimal",
                            scheduler: s.name().into(),
                            budget: b,
                            detail: format!(
                                "provably-optimal DP cost {} != exhaustive optimum {opt}",
                                stats.cost
                            ),
                        },
                    );
                }
            }

            per_sched_costs[si].push(Some(stats.cost));
        }
    }

    // Monotonicity across the sweep (probes are sorted ascending).
    let exact_series: Vec<Option<Weight>> = exact_costs.iter().map(|e| e.flatten()).collect();
    if let Some((b, prev, cur)) = first_monotonicity_break(probes, &exact_series) {
        push(
            out,
            Violation {
                check: "exact-non-monotone",
                scheduler: "exact".into(),
                budget: b,
                detail: format!("exact cost rose from {prev} to {cur} as the budget grew"),
            },
        );
    }
    for (si, s) in schedulers.iter().enumerate() {
        if !s.monotone() {
            continue;
        }
        if let Some((b, prev, cur)) = first_monotonicity_break(probes, &per_sched_costs[si]) {
            push(
                out,
                Violation {
                    check: "non-monotone",
                    scheduler: s.name().into(),
                    budget: b,
                    detail: format!(
                        "monotone() scheduler's cost rose from {prev} to {cur} as the budget grew"
                    ),
                },
            );
        }
    }

    if cfg.metamorphic && out.violations.is_empty() {
        crate::metamorphic::check(g, label, probes, schedulers, cfg, &exact_series, rng, out);
    }
}

/// First `(budget, previous cost, current cost)` where a cost series rises
/// with the budget (`None` gaps are skipped: a scheduler may decline).
fn first_monotonicity_break(
    probes: &[Weight],
    costs: &[Option<Weight>],
) -> Option<(Weight, Weight, Weight)> {
    let mut prev: Option<Weight> = None;
    for (&b, &c) in probes.iter().zip(costs) {
        if let Some(c) = c {
            if let Some(p) = prev {
                if c > p {
                    return Some((b, p, c));
                }
            }
            prev = Some(c);
        }
    }
    None
}

/// A generic op table for arbitrary CDAGs: sources are inputs, every
/// computed node sums its operands — enough for the machine to verify
/// value correctness against its reference evaluation.
pub fn lincom_ops(g: &Cdag) -> OpTable {
    let ops: Vec<Op> = g
        .nodes()
        .map(|v| {
            if g.is_source(v) {
                Op::Input
            } else {
                Op::LinCom(vec![1.0; g.in_degree(v)])
            }
        })
        .collect();
    OpTable::new(g, ops).expect("lincom table matches arities by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::rng::SplitRng;
    use pebblyn_schedulers::registry;

    #[test]
    fn clean_on_a_handful_of_cases() {
        for idx in 0..12 {
            let case = generate(1, idx);
            let mut rng = SplitRng::for_case(1, 1000 + idx);
            let out = check_case(&case, registry(), &OracleConfig::default(), &mut rng);
            assert!(
                out.violations.is_empty(),
                "case {idx} ({}): {:?}",
                case.label(),
                out.violations
            );
            assert!(out.budgets >= 3);
        }
    }

    #[test]
    fn probes_are_sorted_and_bracket_feasibility() {
        let case = generate(2, 0);
        let probes = budget_probes(&case.graph);
        let minb = min_feasible_budget(&case.graph);
        assert!(probes.windows(2).all(|w| w[0] < w[1]));
        assert!(probes.contains(&minb));
        assert!(probes.iter().any(|&b| b < minb));
        assert!(probes.iter().any(|&b| b >= case.graph.total_weight()));
    }
}
