//! The engine's headline invariant: a parallel sweep is byte-identical to
//! a serial (`RAYON_NUM_THREADS=1`) sweep.
//!
//! One `#[test]` only — it mutates the thread-count environment variable,
//! and this integration binary owning the whole process keeps that safe.

use pebblyn_engine::{BudgetSpec, Memo, MinMemoryPlan, Series, SweepPlan};
use pebblyn_graphs::{AnyGraph, WeightScheme, Workload};
use pebblyn_schedulers::api;

fn sweep(memo: &Memo) -> (String, String) {
    let mut plan = SweepPlan::new(
        "determinism",
        BudgetSpec::LogWords {
            lo_words: 3,
            hi_words: 400,
            points: 12,
            word: 16,
        },
    )
    .series(Series::scheduler(&api::DwtOpt))
    .series(Series::scheduler(&api::LayerByLayer))
    .series(Series::scheduler(&api::GreedyBelady))
    .series(Series::ioopt_lb())
    .series(Series::ioopt_ub())
    .measure_peak(true);
    for w in [
        Workload::Dwt { n: 64, d: 6 },
        Workload::Mvm { m: 8, n: 10 },
        Workload::Conv { n: 24, k: 4 },
    ] {
        plan = plan.workload(AnyGraph::build(w, WeightScheme::Equal(16)).unwrap());
    }
    let res = plan.run_with(memo);

    let min = MinMemoryPlan::new("determinism min-memory")
        .workload(AnyGraph::build(Workload::Dwt { n: 64, d: 6 }, WeightScheme::Equal(16)).unwrap())
        .to_lower_bound(Series::scheduler(&api::DwtOpt))
        .to_lower_bound(Series::scheduler(&api::LayerByLayer))
        .run_with(memo);

    // Deterministic emitters only — wall times legitimately differ.
    (format!("{}\n{}", res.to_csv(), res.to_json()), min.to_csv())
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = sweep(&Memo::new());

    std::env::set_var("RAYON_NUM_THREADS", "8");
    let parallel = sweep(&Memo::new());

    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }

    assert_eq!(
        serial.0, parallel.0,
        "sweep rows diverged across thread counts"
    );
    assert_eq!(
        serial.1, parallel.1,
        "min-memory rows diverged across thread counts"
    );
}
