//! # pebblyn-engine — the parallel sweep engine
//!
//! Every figure and table of the paper is a `workloads × budgets ×
//! schedulers` sweep.  This crate turns those sweeps into declarative
//! [`SweepPlan`]s executed by one engine: points fan out across a worker
//! pool ([`par`]), repeated `(graph, scheduler, budget)` evaluations hit a
//! shared memo table ([`memo`]), and results come back as structured
//! [`SweepRow`]s with CSV/JSON emitters — in deterministic plan order, so
//! a parallel run is byte-identical to `RAYON_NUM_THREADS=1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memo;
pub mod par;
pub mod plan;
pub mod result;
pub mod shard;

pub use memo::Memo;
pub use plan::{log_budgets, BudgetSpec, MinMemoryEntry, MinMemoryPlan, Series, SweepPlan};
pub use result::{MinMemoryResult, MinMemoryRow, SweepResult, SweepRow};
pub use shard::ShardedWorklist;
