//! Scoped worker pool for sweep evaluation.
//!
//! The paper's figures are embarrassingly parallel — every sweep point is
//! an independent `(graph, budget, scheduler)` evaluation — so a simple
//! work-stealing-free pool (shared atomic cursor over an indexed slice)
//! gets within noise of rayon for these workloads without any external
//! dependency.
//!
//! Thread count resolution, first match wins:
//!
//! 1. `RAYON_NUM_THREADS` (the convention sweep scripts already use),
//! 2. `PEBBLYN_THREADS`,
//! 3. [`std::thread::available_parallelism`].
//!
//! Results are always returned in input order, so parallel and serial
//! runs are byte-identical downstream.

use pebblyn_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolved worker count for `n_items` work items (at least 1).
pub fn thread_count(n_items: usize) -> usize {
    let configured = std::env::var("RAYON_NUM_THREADS")
        .or_else(|_| std::env::var("PEBBLYN_THREADS"))
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let n = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    n.min(n_items.max(1))
}

/// Order-preserving parallel map: `out[i] = f(&items[i])`.
///
/// Runs inline (no threads spawned) when the pool resolves to one worker,
/// which makes `RAYON_NUM_THREADS=1` a true serial baseline.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    telemetry::incr(telemetry::Counter::ParRounds);
    telemetry::add(telemetry::Counter::ParTasks, items.len() as u64);
    telemetry::gauge_max(telemetry::Gauge::QueueDepthPeak, items.len() as u64);
    let threads = thread_count(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_positive_and_bounded() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(64) >= 1);
    }
}
