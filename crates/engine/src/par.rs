//! Scoped worker pool for sweep evaluation.
//!
//! The paper's figures are embarrassingly parallel — every sweep point is
//! an independent `(graph, budget, scheduler)` evaluation — so a simple
//! work-stealing-free pool (shared atomic cursor over an indexed slice)
//! gets within noise of rayon for these workloads without any external
//! dependency.
//!
//! Thread count resolution, first match wins:
//!
//! 1. `RAYON_NUM_THREADS` (the convention sweep scripts already use),
//! 2. `PEBBLYN_THREADS`,
//! 3. [`std::thread::available_parallelism`].
//!
//! Results are always returned in input order, so parallel and serial
//! runs are byte-identical downstream.

use pebblyn_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolved worker count for `n_items` work items (at least 1).
pub fn thread_count(n_items: usize) -> usize {
    let configured = std::env::var("RAYON_NUM_THREADS")
        .or_else(|_| std::env::var("PEBBLYN_THREADS"))
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let n = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    n.min(n_items.max(1))
}

/// Order-preserving parallel map: `out[i] = f(&items[i])`.
///
/// Runs inline (no threads spawned) when the pool resolves to one worker,
/// which makes `RAYON_NUM_THREADS=1` a true serial baseline.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    telemetry::incr(telemetry::Counter::ParRounds);
    telemetry::add(telemetry::Counter::ParTasks, items.len() as u64);
    telemetry::gauge_max(telemetry::Gauge::QueueDepthPeak, items.len() as u64);
    let threads = thread_count(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    })
}

/// Hash-distributed order-preserving parallel map (HDA\*-style expansion).
///
/// Every item is *owned* by one of `owners` virtual shards, selected by
/// `hints[i] % owners` — the same hash-routing the sharded open list uses —
/// and each shard's items are expanded as one task.  Hash ownership alone
/// can leave shards idle while one shard drags the whole round, so a
/// **deterministic rebalance** runs first: each shard keeps at most
/// `ceil(len / owners)` items and donates its overflow (highest input
/// indices first) to the underloaded shards in ascending shard order.  Each
/// donated item counts as one *steal*.
///
/// Both the assignment and the rebalance are pure functions of
/// `(hints, owners)` — never of the physical thread count or of timing —
/// so the returned results (always in input order) **and** the steal count
/// are byte-identical whether the pool runs 1 or 64 threads.  That is the
/// property that lets the exact solver report `frontier_steals` as a
/// deterministic per-search statistic.
///
/// Returns `(results, steals)` with `results[i] = f(&items[i])`.
///
/// # Panics
///
/// Panics when `hints.len() != items.len()` or `owners == 0`.
pub fn par_map_hash_distributed<T, R, F>(
    items: &[T],
    hints: &[u64],
    owners: usize,
    f: F,
) -> (Vec<R>, u64)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert_eq!(hints.len(), items.len(), "one owner hint per item");
    assert!(owners > 0, "at least one owner shard");
    if items.len() <= 1 {
        return (items.iter().map(f).collect(), 0);
    }
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); owners];
    for (i, &hint) in hints.iter().enumerate() {
        buckets[(hint % owners as u64) as usize].push(i);
    }
    // Deterministic rebalance: cap every bucket at ceil(len/owners); the
    // overflow queue drains into underloaded buckets in ascending order.
    let target = items.len().div_ceil(owners);
    let mut overflow: Vec<usize> = Vec::new();
    for bucket in &mut buckets {
        if bucket.len() > target {
            overflow.extend(bucket.drain(target..));
        }
    }
    let steals = overflow.len() as u64;
    let mut spill = overflow.into_iter();
    for bucket in &mut buckets {
        while bucket.len() < target {
            let Some(i) = spill.next() else { break };
            bucket.push(i);
        }
    }
    debug_assert!(spill.next().is_none(), "rebalance places every item");

    let per_bucket = par_map(&buckets, |idxs| {
        idxs.iter().map(|&i| (i, f(&items[i]))).collect::<Vec<_>>()
    });
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for pairs in per_bucket {
        for (i, r) in pairs {
            results[i] = Some(r);
        }
    }
    (
        results
            .into_iter()
            .map(|r| r.expect("every item expanded by exactly one owner"))
            .collect(),
        steals,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_positive_and_bounded() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(64) >= 1);
    }

    #[test]
    fn hash_distributed_preserves_order_and_covers_every_item() {
        let items: Vec<u64> = (0..100).collect();
        let hints: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9e37)).collect();
        let (out, _) = par_map_hash_distributed(&items, &hints, 8, |&x| x * 3);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn hash_distributed_steals_are_deterministic_functions_of_hints() {
        let items: Vec<u64> = (0..64).collect();
        // All hints collide on owner 0: everything beyond ceil(64/8) = 8
        // items must be stolen, every run, at any thread count.
        let hints = vec![0u64; 64];
        let (out1, steals1) = par_map_hash_distributed(&items, &hints, 8, |&x| x + 1);
        let (out2, steals2) = par_map_hash_distributed(&items, &hints, 8, |&x| x + 1);
        assert_eq!(steals1, 64 - 8);
        assert_eq!(steals1, steals2);
        assert_eq!(out1, out2);
        // Perfectly spread hints steal nothing.
        let spread: Vec<u64> = (0..64).collect();
        let (_, steals) = par_map_hash_distributed(&items, &spread, 8, |&x| x);
        assert_eq!(steals, 0);
    }

    #[test]
    fn hash_distributed_handles_empty_and_single() {
        let (out, steals) = par_map_hash_distributed(&[] as &[u8], &[], 8, |&x| x);
        assert_eq!(out, Vec::<u8>::new());
        assert_eq!(steals, 0);
        let (out, steals) = par_map_hash_distributed(&[7u8], &[3], 8, |&x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(steals, 0);
    }
}
