//! Structured sweep results with CSV/JSON emitters.
//!
//! Rows are produced in deterministic plan order (workload-major, then
//! budget, then series), so a parallel run's [`SweepResult::to_csv`] is
//! byte-identical to a single-threaded one.  Wall-clock timings are
//! recorded per row but kept out of the deterministic emitters; use
//! [`SweepResult::to_csv_timed`] when you want them.

use pebblyn_core::Weight;

/// One evaluated sweep point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRow {
    /// Workload instance name, e.g. `DWT(256, 8)`.
    pub workload: String,
    /// Series (scheduler or model) name, e.g. `dwt-opt`.
    pub series: String,
    /// Fast-memory budget in bits.
    pub budget: Weight,
    /// The workload's algorithmic lower bound in bits.
    pub lower_bound: Weight,
    /// The series' cost at this budget (`None` = infeasible/unsupported).
    pub cost: Option<Weight>,
    /// Peak fast-memory occupancy of the generated schedule, when the plan
    /// asked for it and the series produces schedules.
    pub peak: Option<Weight>,
    /// Wall-clock time spent evaluating this point (nondeterministic; zero
    /// when the memo answered).
    pub wall_ns: u64,
}

impl SweepRow {
    /// Distance of the achieved cost from the algorithmic lower bound.
    pub fn gap(&self) -> Option<Weight> {
        self.cost.map(|c| c.saturating_sub(self.lower_bound))
    }
}

fn cell(v: Option<Weight>) -> String {
    v.map_or_else(|| "inf".into(), |w| w.to_string())
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(v: Option<Weight>) -> String {
    v.map_or_else(|| "null".into(), |w| w.to_string())
}

/// All rows of one executed [`crate::SweepPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepResult {
    /// Plan title.
    pub title: String,
    /// Rows in plan order.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Header of [`Self::to_csv`].
    pub const CSV_HEADER: &'static str =
        "workload,series,budget_bits,lower_bound_bits,cost_bits,peak_bits,gap_bits";

    /// Deterministic CSV (no timings): identical across thread counts.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                r.workload,
                r.series,
                r.budget,
                r.lower_bound,
                cell(r.cost),
                cell(r.peak),
                cell(r.gap()),
            ));
        }
        out
    }

    /// CSV with a trailing nondeterministic `wall_ns` column.
    pub fn to_csv_timed(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push_str(",wall_ns\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.workload,
                r.series,
                r.budget,
                r.lower_bound,
                cell(r.cost),
                cell(r.peak),
                cell(r.gap()),
                r.wall_ns,
            ));
        }
        out
    }

    /// Deterministic JSON: `{"title": ..., "rows": [{...}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"title\":{},\"rows\":[", json_str(&self.title));
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"workload\":{},\"series\":{},\"budget_bits\":{},\
                 \"lower_bound_bits\":{},\"cost_bits\":{},\"peak_bits\":{},\"gap_bits\":{}}}",
                json_str(&r.workload),
                json_str(&r.series),
                r.budget,
                r.lower_bound,
                json_opt(r.cost),
                json_opt(r.peak),
                json_opt(r.gap()),
            ));
        }
        out.push_str("]}");
        out
    }

    /// The `(budget, cost)` column of one `(workload, series)` pair, in
    /// plan order — how figure binaries pivot rows back into plot series.
    pub fn series_costs(&self, workload: &str, series: &str) -> Vec<(Weight, Option<Weight>)> {
        self.rows
            .iter()
            .filter(|r| r.workload == workload && r.series == series)
            .map(|r| (r.budget, r.cost))
            .collect()
    }

    /// Total wall-clock nanoseconds summed over rows (CPU-time-like: the
    /// parallel wall-clock is lower).
    pub fn total_wall_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.wall_ns).sum()
    }
}

/// One minimum-fast-memory answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinMemoryRow {
    /// Workload instance name.
    pub workload: String,
    /// Series name.
    pub series: String,
    /// The workload's algorithmic lower bound in bits.
    pub lower_bound: Weight,
    /// The minimum fast memory in bits (`None` = the goal is unreachable).
    pub min_bits: Option<Weight>,
    /// Wall-clock time spent on this entry (nondeterministic).
    pub wall_ns: u64,
}

/// All rows of one executed [`crate::MinMemoryPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinMemoryResult {
    /// Plan title.
    pub title: String,
    /// Rows in plan order (workload-major, then series).
    pub rows: Vec<MinMemoryRow>,
}

impl MinMemoryResult {
    /// Header of [`Self::to_csv`].
    pub const CSV_HEADER: &'static str = "workload,series,lower_bound_bits,min_memory_bits";

    /// Deterministic CSV (no timings).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.workload,
                r.series,
                r.lower_bound,
                cell(r.min_bits),
            ));
        }
        out
    }

    /// The minimum-memory column of one series, in workload order.
    pub fn series_minima(&self, series: &str) -> Vec<Option<Weight>> {
        self.rows
            .iter()
            .filter(|r| r.series == series)
            .map(|r| r.min_bits)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cost: Option<Weight>) -> SweepRow {
        SweepRow {
            workload: "DWT(4, 1)".into(),
            series: "dwt-opt".into(),
            budget: 64,
            lower_bound: 96,
            cost,
            peak: Some(48),
            wall_ns: 1234,
        }
    }

    #[test]
    fn csv_shapes() {
        let res = SweepResult {
            title: "t".into(),
            rows: vec![row(Some(100)), row(None)],
        };
        let csv = res.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(SweepResult::CSV_HEADER));
        assert_eq!(lines.next(), Some("DWT(4, 1),dwt-opt,64,96,100,48,4"));
        assert_eq!(lines.next(), Some("DWT(4, 1),dwt-opt,64,96,inf,48,inf"));
        assert!(res
            .to_csv_timed()
            .lines()
            .next()
            .unwrap()
            .ends_with(",wall_ns"));
        assert!(res.to_csv_timed().contains(",1234"));
        assert!(
            !res.to_csv().contains("1234"),
            "timings stay out of the deterministic CSV"
        );
    }

    #[test]
    fn json_is_escaped_and_nullable() {
        let mut r = row(None);
        r.workload = "odd\"name".into();
        let res = SweepResult {
            title: "t".into(),
            rows: vec![r],
        };
        let json = res.to_json();
        assert!(json.contains("\"workload\":\"odd\\\"name\""));
        assert!(json.contains("\"cost_bits\":null"));
        assert!(json.contains("\"peak_bits\":48"));
        assert!(!json.contains("wall"));
    }

    #[test]
    fn gap_saturates_below_lower_bound() {
        // A cost below the LB can only arise from a buggy model, but the
        // emitter must not panic on it.
        let mut r = row(Some(10));
        r.lower_bound = 20;
        assert_eq!(r.gap(), Some(0));
    }

    #[test]
    fn series_pivot() {
        let res = SweepResult {
            title: "t".into(),
            rows: vec![row(Some(1)), row(Some(2))],
        };
        assert_eq!(
            res.series_costs("DWT(4, 1)", "dwt-opt"),
            vec![(64, Some(1)), (64, Some(2))]
        );
        assert!(res.series_costs("DWT(4, 1)", "other").is_empty());
        assert_eq!(res.total_wall_ns(), 2468);
    }

    #[test]
    fn min_memory_csv() {
        let res = MinMemoryResult {
            title: "t".into(),
            rows: vec![MinMemoryRow {
                workload: "MVM(2, 3)".into(),
                series: "mvm-tiling".into(),
                lower_bound: 100,
                min_bits: Some(160),
                wall_ns: 7,
            }],
        };
        assert_eq!(
            res.to_csv(),
            "workload,series,lower_bound_bits,min_memory_bits\nMVM(2, 3),mvm-tiling,100,160\n"
        );
        assert_eq!(res.series_minima("mvm-tiling"), vec![Some(160)]);
    }
}
