//! Shared memo table for sweep evaluations.
//!
//! Different plans probe the same dynamic programs at the same points:
//! Figure 5 sweeps `dwt_opt::min_cost(DWT(256,8), b)` over a budget grid,
//! Table 1 bisects the same cost function down to the lower bound, and the
//! CLI re-runs both shapes interactively.  [`Memo`] caches every
//! `(graph, series, budget) → cost` evaluation so those probes are paid
//! once per process, across threads and across plans (share one table via
//! [`Memo::global`]).

use pebblyn_core::Weight;
use pebblyn_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A concurrent `(graph key, series name, budget) → cost` cache.
///
/// Values are the full `Option<Weight>` a cost function returns, so
/// "infeasible at this budget" is cached too.  Two threads racing on the
/// same uncached point may both compute it — cost functions are pure, so
/// the duplicate work is harmless and the table stays lock-light.
#[derive(Debug, Default)]
pub struct Memo {
    map: Mutex<HashMap<(String, String, Weight), Option<Weight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Memo {
    /// An empty table.
    pub fn new() -> Self {
        Memo::default()
    }

    /// The process-wide table shared by the bench binaries and the CLI.
    pub fn global() -> &'static Memo {
        static GLOBAL: OnceLock<Memo> = OnceLock::new();
        GLOBAL.get_or_init(Memo::new)
    }

    /// The cached cost of `(key, series, budget)`, computing and caching it
    /// via `compute` on a miss.
    pub fn cost_or(
        &self,
        key: &str,
        series: &str,
        budget: Weight,
        compute: impl FnOnce() -> Option<Weight>,
    ) -> Option<Weight> {
        {
            let map = self.map.lock().expect("memo poisoned");
            if let Some(&cached) = map.get(&(key.to_string(), series.to_string(), budget)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                telemetry::incr(telemetry::Counter::MemoHits);
                return cached;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::incr(telemetry::Counter::MemoMisses);
        let value = compute();
        self.map
            .lock()
            .expect("memo poisoned")
            .insert((key.to_string(), series.to_string(), budget), value);
        value
    }

    /// Number of lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo poisoned").len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_some_and_none() {
        let memo = Memo::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = memo.cost_or("g", "s", 10, || {
                calls += 1;
                Some(42)
            });
            assert_eq!(v, Some(42));
        }
        assert_eq!(calls, 1);
        let mut none_calls = 0;
        for _ in 0..3 {
            let v = memo.cost_or("g", "s", 5, || {
                none_calls += 1;
                None
            });
            assert_eq!(v, None);
        }
        assert_eq!(none_calls, 1, "infeasibility is cached too");
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.misses(), 2);
        assert_eq!(memo.hits(), 4);
    }

    #[test]
    fn keys_do_not_collide() {
        let memo = Memo::new();
        assert_eq!(memo.cost_or("g1", "s", 1, || Some(1)), Some(1));
        assert_eq!(memo.cost_or("g2", "s", 1, || Some(2)), Some(2));
        assert_eq!(memo.cost_or("g1", "t", 1, || Some(3)), Some(3));
        assert_eq!(memo.cost_or("g1", "s", 2, || Some(4)), Some(4));
        assert_eq!(memo.cost_or("g1", "s", 1, || unreachable!()), Some(1));
    }

    #[test]
    fn shared_across_threads() {
        let memo = Memo::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for b in 0..64u64 {
                        assert_eq!(memo.cost_or("g", "s", b, || Some(b * 2)), Some(b * 2));
                    }
                });
            }
        });
        assert_eq!(memo.len(), 64);
    }
}
