//! Generalized sharded worklist for best-first search.
//!
//! A [`ShardedWorklist`] partitions an ordered open list across a fixed
//! number of independent binary heaps.  Items are routed by a caller-supplied
//! shard hint (typically a hash of the item's identity, e.g.
//! `pebblyn_core::fasthash`), which keeps each heap — and therefore each
//! push/pop — logarithmic in a fraction of the total frontier.  Popping
//! compares the heads of all shards and takes the globally best item with a
//! deterministic tie-break on the lowest shard index, so a search driver
//! draining the worklist sequentially observes one canonical order no matter
//! how items were interleaved across shards.  That property is what lets the
//! exact solver expand frontiers in parallel batches (via [`crate::par`])
//! while staying byte-reproducible.

use std::collections::BinaryHeap;

/// An ordered worklist split across `shards` independent binary heaps.
///
/// `pop_best` returns the maximum item under `T`'s `Ord` (callers that want
/// a min-queue invert their ordering, exactly as with
/// `std::collections::BinaryHeap`); ties between shard heads resolve to the
/// lowest shard index.
#[derive(Debug, Clone)]
pub struct ShardedWorklist<T: Ord> {
    shards: Vec<BinaryHeap<T>>,
}

impl<T: Ord> ShardedWorklist<T> {
    /// An empty worklist with `shards` heaps (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedWorklist {
            shards: (0..shards.max(1)).map(|_| BinaryHeap::new()).collect(),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Push `item` onto the shard selected by `hint` (reduced modulo the
    /// shard count; any well-mixed hash of the item works).
    pub fn push(&mut self, hint: u64, item: T) {
        let idx = (hint % self.shards.len() as u64) as usize;
        self.shards[idx].push(item);
    }

    /// Remove and return the globally best item, or `None` when empty.
    /// Ties between shard heads go to the lowest shard index.
    pub fn pop_best(&mut self) -> Option<T> {
        let mut best: Option<usize> = None;
        for (i, heap) in self.shards.iter().enumerate() {
            let Some(head) = heap.peek() else { continue };
            match best {
                // Strict `>` keeps the earliest shard on equal heads.
                Some(b) if head > self.shards[b].peek().expect("best shard is non-empty") => {
                    best = Some(i);
                }
                Some(_) => {}
                None => best = Some(i),
            }
        }
        best.and_then(|i| self.shards[i].pop())
    }

    /// Total number of queued items across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(BinaryHeap::len).sum()
    }

    /// `true` when no shard holds an item.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(BinaryHeap::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn pops_in_global_order_across_shards() {
        let mut wl = ShardedWorklist::new(4);
        for (i, v) in [5u64, 1, 9, 3, 7, 2, 8].into_iter().enumerate() {
            wl.push(i as u64, Reverse(v)); // min-queue via Reverse
        }
        assert_eq!(wl.len(), 7);
        let mut got = Vec::new();
        while let Some(Reverse(v)) = wl.pop_best() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2, 3, 5, 7, 8, 9]);
        assert!(wl.is_empty());
    }

    #[derive(Debug, PartialEq, Eq)]
    struct Tagged {
        key: u64,
        tag: &'static str,
    }

    impl Ord for Tagged {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.key.cmp(&other.key) // tag intentionally excluded
        }
    }

    impl PartialOrd for Tagged {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    #[test]
    fn ties_resolve_to_lowest_shard_deterministically() {
        // Items comparing equal but landing on different shards must drain
        // in ascending shard order.
        let mut wl = ShardedWorklist::new(3);
        wl.push(
            2,
            Tagged {
                key: 1,
                tag: "shard2",
            },
        );
        wl.push(
            0,
            Tagged {
                key: 1,
                tag: "shard0",
            },
        );
        wl.push(
            1,
            Tagged {
                key: 1,
                tag: "shard1",
            },
        );
        let mut got = Vec::new();
        while let Some(item) = wl.pop_best() {
            got.push(item.tag);
        }
        assert_eq!(got, vec!["shard0", "shard1", "shard2"]);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mut wl = ShardedWorklist::new(0);
        assert_eq!(wl.shard_count(), 1);
        wl.push(17, 42u32);
        assert_eq!(wl.pop_best(), Some(42));
        assert_eq!(wl.pop_best(), None);
    }
}
