//! Declarative sweep plans: `workloads × budgets × series`.
//!
//! A [`SweepPlan`] names what to evaluate — workload instances, a budget
//! grid, and cost series (schedulers behind the
//! [`Scheduler`] trait, or analytic models such as the IOOpt bounds) —
//! and [`SweepPlan::run`] fans the cross product out over the worker pool,
//! deduplicating repeated evaluations through a [`Memo`].  A
//! [`MinMemoryPlan`] does the same for Definition 2.6 searches.
//!
//! Rows come back in deterministic plan order regardless of thread count,
//! so parallel output is byte-identical to `RAYON_NUM_THREADS=1`.

use crate::memo::Memo;
use crate::par::par_map;
use crate::result::{MinMemoryResult, MinMemoryRow, SweepResult, SweepRow};
use pebblyn_baselines::IoOptMvmModel;
use pebblyn_core::{
    algorithmic_lower_bound, min_feasible_budget, occupancy_summary, ScheduleRequest, Weight,
};
use pebblyn_graphs::AnyGraph;
use pebblyn_schedulers::{api, MinMemoryOptions, ScheduleError, Scheduler};
use pebblyn_telemetry as telemetry;
use std::time::Instant;

/// Log-spaced budgets on the word lattice from `lo_words` to `hi_words`
/// (inclusive, deduplicated, in bits).
pub fn log_budgets(lo_words: u64, hi_words: u64, points: usize, word: u64) -> Vec<Weight> {
    assert!(lo_words >= 1 && hi_words >= lo_words && points >= 2);
    let lo = lo_words as f64;
    let hi = hi_words as f64;
    let mut out: Vec<Weight> = (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            let w = lo * (hi / lo).powf(t);
            (w.round() as u64).clamp(lo_words, hi_words) * word
        })
        .collect();
    out.dedup();
    out
}

/// How a plan picks its budget grid.
#[derive(Debug, Clone)]
pub enum BudgetSpec {
    /// An explicit list of budgets in bits, shared by every workload.
    Explicit(Vec<Weight>),
    /// [`log_budgets`] — the figure binaries' grid.
    LogWords {
        /// Smallest budget in words.
        lo_words: u64,
        /// Largest budget in words.
        hi_words: u64,
        /// Number of grid points before deduplication.
        points: usize,
        /// Word size in bits.
        word: u64,
    },
    /// Per-workload log grid from the minimum feasible budget to the total
    /// weight, floored to word multiples — the CLI `sweep` grid (every
    /// point is kept, duplicates included).
    LogLattice {
        /// Number of grid points.
        points: usize,
        /// Word size in bits (floor granularity).
        word: u64,
    },
}

impl BudgetSpec {
    /// The budgets to probe for one workload.
    pub fn budgets(&self, g: &AnyGraph) -> Vec<Weight> {
        match *self {
            BudgetSpec::Explicit(ref b) => b.clone(),
            BudgetSpec::LogWords {
                lo_words,
                hi_words,
                points,
                word,
            } => log_budgets(lo_words, hi_words, points, word),
            BudgetSpec::LogLattice { points, word } => {
                assert!(word > 0, "word size must be positive");
                let cdag = g.cdag();
                let lo = min_feasible_budget(cdag);
                let hi = cdag.total_weight();
                let points = points.max(2);
                (0..points)
                    .map(|i| {
                        let t = i as f64 / (points - 1) as f64;
                        let b = (lo as f64 * (hi as f64 / lo as f64).powf(t)) as Weight;
                        b / word * word
                    })
                    .collect()
            }
        }
    }
}

/// Boxed analytic cost model: `(graph, budget) -> cost`.
type CostFn<'a> = Box<dyn Fn(&AnyGraph, Weight) -> Option<Weight> + Send + Sync + 'a>;

/// Boxed closed-form minimum-memory formula.
type MinMemoryFn<'a> = Box<dyn Fn(&AnyGraph) -> Option<Weight> + Send + Sync + 'a>;

enum Kind<'a> {
    Scheduler(&'a dyn Scheduler),
    Model(CostFn<'a>),
}

/// One cost series of a sweep: a scheduler or an analytic model.
pub struct Series<'a> {
    name: String,
    monotone: bool,
    kind: Kind<'a>,
}

impl<'a> Series<'a> {
    /// A scheduler series (name and monotonicity from the trait).
    pub fn scheduler(s: &'a dyn Scheduler) -> Self {
        Series {
            name: s.name().to_string(),
            monotone: s.monotone(),
            kind: Kind::Scheduler(s),
        }
    }

    /// An analytic cost model series.
    pub fn model(
        name: impl Into<String>,
        monotone: bool,
        f: impl Fn(&AnyGraph, Weight) -> Option<Weight> + Send + Sync + 'a,
    ) -> Self {
        Series {
            name: name.into(),
            monotone,
            kind: Kind::Model(Box::new(f)),
        }
    }

    /// The IOOpt lower bound for MVM workloads (§5.2).
    pub fn ioopt_lb() -> Series<'static> {
        Series::model("ioopt-lb", true, |g, b| match g {
            AnyGraph::Mvm(m) => Some(IoOptMvmModel::for_graph(m).lower_bound(b)),
            _ => None,
        })
    }

    /// The IOOpt upper bound for MVM workloads (§5.2).
    pub fn ioopt_ub() -> Series<'static> {
        Series::model("ioopt-ub", true, |g, b| match g {
            AnyGraph::Mvm(m) => IoOptMvmModel::for_graph(m).upper_bound(b),
            _ => None,
        })
    }

    /// The series name used in result rows and memo keys.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the series' cost is non-increasing in the budget.
    pub fn monotone(&self) -> bool {
        self.monotone
    }

    /// Evaluate the series (unmemoized).
    ///
    /// Scheduler series go through the typed request surface
    /// ([`api::execute_with`] with a cost-only [`ScheduleRequest`], so DP
    /// schedulers answer from their recurrences), folding
    /// [`ScheduleError::Unsupported`] and
    /// [`ScheduleError::InfeasibleBudget`] into `None` (an empty sweep
    /// cell); a [`ScheduleError::ValidationFailed`] is a scheduler bug and
    /// panics rather than masquerading as infeasibility.
    pub fn cost(&self, g: &AnyGraph, budget: Weight) -> Option<Weight> {
        match &self.kind {
            Kind::Scheduler(s) => {
                let req = ScheduleRequest::new(g, budget, s.name()).with_cost_only(true);
                match api::execute_with(*s, &req) {
                    Ok(r) => Some(r.cost()),
                    Err(ScheduleError::Unsupported | ScheduleError::InfeasibleBudget { .. }) => {
                        None
                    }
                    Err(
                        e @ (ScheduleError::ValidationFailed(_)
                        | ScheduleError::MultiValidationFailed(_)),
                    ) => {
                        panic!("{} on {} at {budget}: {e}", s.name(), g.name())
                    }
                }
            }
            Kind::Model(f) => f(g, budget),
        }
    }

    fn schedule_peak(&self, g: &AnyGraph, budget: Weight) -> Option<Weight> {
        match &self.kind {
            Kind::Scheduler(s) => s
                .schedule(g, budget)
                .ok()
                .map(|sch| occupancy_summary(g.cdag(), &sch).peak),
            Kind::Model(_) => None,
        }
    }
}

impl std::fmt::Debug for Series<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Series")
            .field("name", &self.name)
            .field("monotone", &self.monotone)
            .finish_non_exhaustive()
    }
}

/// A declarative `workloads × budgets × series` sweep.
///
/// Constructed exclusively through [`SweepPlan::new`] and the builder
/// methods ([`workload`](SweepPlan::workload), [`series`](SweepPlan::series),
/// [`measure_peak`](SweepPlan::measure_peak)) so adding plan knobs is not a
/// breaking change.
#[derive(Debug)]
pub struct SweepPlan<'a> {
    title: String,
    workloads: Vec<AnyGraph>,
    budgets: BudgetSpec,
    series: Vec<Series<'a>>,
    measure_peak: bool,
}

impl<'a> SweepPlan<'a> {
    /// An empty plan over a budget grid.
    pub fn new(title: impl Into<String>, budgets: BudgetSpec) -> Self {
        SweepPlan {
            title: title.into(),
            workloads: Vec::new(),
            budgets,
            series: Vec::new(),
            measure_peak: false,
        }
    }

    /// Add a workload instance.
    pub fn workload(mut self, g: AnyGraph) -> Self {
        self.workloads.push(g);
        self
    }

    /// Add a cost series.
    pub fn series(mut self, s: Series<'a>) -> Self {
        self.series.push(s);
        self
    }

    /// Request per-point peak-occupancy measurement.
    pub fn measure_peak(mut self, yes: bool) -> Self {
        self.measure_peak = yes;
        self
    }

    /// Execute with a private memo table.
    pub fn run(&self) -> SweepResult {
        self.run_with(&Memo::new())
    }

    /// Execute, sharing `memo` with other plans.
    ///
    /// Points fan out over the worker pool (`RAYON_NUM_THREADS`, then
    /// `PEBBLYN_THREADS`, then all cores); rows come back in plan order:
    /// workload-major, then budget, then series.
    pub fn run_with(&self, memo: &Memo) -> SweepResult {
        let _span = telemetry::span("sweep");
        struct WorkloadMeta {
            name: String,
            key: String,
            lower_bound: Weight,
        }
        let meta: Vec<WorkloadMeta> = self
            .workloads
            .iter()
            .map(|g| WorkloadMeta {
                name: g.name(),
                key: g.key(),
                lower_bound: algorithmic_lower_bound(g.cdag()),
            })
            .collect();
        let mut points: Vec<(usize, Weight, usize)> = Vec::new();
        for (wi, g) in self.workloads.iter().enumerate() {
            for b in self.budgets.budgets(g) {
                for si in 0..self.series.len() {
                    points.push((wi, b, si));
                }
            }
        }
        let rows = par_map(&points, |&(wi, budget, si)| {
            let started = Instant::now();
            let g = &self.workloads[wi];
            let s = &self.series[si];
            let m = &meta[wi];
            let cost = memo.cost_or(&m.key, s.name(), budget, || s.cost(g, budget));
            let peak = if self.measure_peak {
                s.schedule_peak(g, budget)
            } else {
                None
            };
            SweepRow {
                workload: m.name.clone(),
                series: s.name().to_string(),
                budget,
                lower_bound: m.lower_bound,
                cost,
                peak,
                wall_ns: started.elapsed().as_nanos() as u64,
            }
        });
        SweepResult {
            title: self.title.clone(),
            rows,
        }
    }
}

/// One column of a [`MinMemoryPlan`].
pub enum MinMemoryEntry<'a> {
    /// Search the smallest budget at which the series' cost reaches the
    /// workload's algorithmic lower bound (Definition 2.6), bisecting when
    /// the series is monotone.
    ToLowerBound(Series<'a>),
    /// A closed-form family minimum, evaluated directly (e.g.
    /// `mvm_tiling::min_memory`, `IoOptMvmModel::min_memory`).
    Direct {
        /// Column name.
        name: String,
        /// The minimum for one workload (`None` = not applicable).
        f: MinMemoryFn<'a>,
    },
}

impl MinMemoryEntry<'_> {
    /// The column name used in result rows.
    pub fn name(&self) -> &str {
        match self {
            MinMemoryEntry::ToLowerBound(s) => s.name(),
            MinMemoryEntry::Direct { name, .. } => name,
        }
    }
}

impl std::fmt::Debug for MinMemoryEntry<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MinMemoryEntry({})", self.name())
    }
}

/// A declarative `workloads × series` minimum-fast-memory computation.
///
/// Constructed exclusively through [`MinMemoryPlan::new`] and the builder
/// methods, like [`SweepPlan`].
#[derive(Debug)]
pub struct MinMemoryPlan<'a> {
    title: String,
    workloads: Vec<AnyGraph>,
    entries: Vec<MinMemoryEntry<'a>>,
}

impl<'a> MinMemoryPlan<'a> {
    /// An empty plan.
    pub fn new(title: impl Into<String>) -> Self {
        MinMemoryPlan {
            title: title.into(),
            workloads: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Add a workload instance.
    pub fn workload(mut self, g: AnyGraph) -> Self {
        self.workloads.push(g);
        self
    }

    /// Add a Definition 2.6 search column for a series.
    pub fn to_lower_bound(mut self, s: Series<'a>) -> Self {
        self.entries.push(MinMemoryEntry::ToLowerBound(s));
        self
    }

    /// Add a closed-form column.
    pub fn direct(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&AnyGraph) -> Option<Weight> + Send + Sync + 'a,
    ) -> Self {
        self.entries.push(MinMemoryEntry::Direct {
            name: name.into(),
            f: Box::new(f),
        });
        self
    }

    /// Execute with a private memo table.
    pub fn run(&self) -> MinMemoryResult {
        self.run_with(&Memo::new())
    }

    /// Execute, sharing `memo` with other plans.  Search probes go through
    /// the memo, so a sweep that already evaluated a budget makes the
    /// bisection here free (and vice versa).
    pub fn run_with(&self, memo: &Memo) -> MinMemoryResult {
        let _span = telemetry::span("min_memory");
        let mut points: Vec<(usize, usize)> = Vec::new();
        for wi in 0..self.workloads.len() {
            for ei in 0..self.entries.len() {
                points.push((wi, ei));
            }
        }
        let rows = par_map(&points, |&(wi, ei)| {
            let started = Instant::now();
            let g = &self.workloads[wi];
            let cdag = g.cdag();
            let lower_bound = algorithmic_lower_bound(cdag);
            let min_bits = match &self.entries[ei] {
                MinMemoryEntry::ToLowerBound(s) => {
                    let key = g.key();
                    let opts = MinMemoryOptions::for_graph(cdag).monotone(s.monotone());
                    pebblyn_schedulers::min_memory(
                        |b| memo.cost_or(&key, s.name(), b, || s.cost(g, b)),
                        lower_bound,
                        opts,
                    )
                }
                MinMemoryEntry::Direct { f, .. } => f(g),
            };
            MinMemoryRow {
                workload: g.name(),
                series: self.entries[ei].name().to_string(),
                lower_bound,
                min_bits,
                wall_ns: started.elapsed().as_nanos() as u64,
            }
        });
        MinMemoryResult {
            title: self.title.clone(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_graphs::{WeightScheme, Workload};
    use pebblyn_schedulers::api::{DwtOpt, LayerByLayer};
    use pebblyn_schedulers::layer_by_layer::LayerByLayerOptions;
    use pebblyn_schedulers::{dwt_opt, layer_by_layer, mvm_tiling};

    fn dwt16() -> AnyGraph {
        AnyGraph::build(Workload::Dwt { n: 16, d: 4 }, WeightScheme::Equal(16)).unwrap()
    }

    #[test]
    fn log_budgets_are_monotone_and_bounded() {
        let b = log_budgets(3, 1024, 20, 16);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.first().unwrap(), 48);
        assert_eq!(*b.last().unwrap(), 1024 * 16);
    }

    #[test]
    fn log_lattice_matches_cli_grid() {
        let g = dwt16();
        let spec = BudgetSpec::LogLattice {
            points: 5,
            word: 16,
        };
        let budgets = spec.budgets(&g);
        assert_eq!(budgets.len(), 5, "every point kept, duplicates included");
        assert!(budgets.iter().all(|b| b % 16 == 0));
        assert!(budgets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sweep_rows_match_direct_evaluation() {
        let g = dwt16();
        let AnyGraph::Dwt(ref d) = g else {
            unreachable!()
        };
        let budgets = vec![64, 112, 160, 4096];
        let plan = SweepPlan::new("test", BudgetSpec::Explicit(budgets.clone()))
            .workload(g.clone())
            .series(Series::scheduler(&DwtOpt))
            .series(Series::scheduler(&LayerByLayer));
        let res = plan.run();
        assert_eq!(res.rows.len(), budgets.len() * 2);
        for (i, &b) in budgets.iter().enumerate() {
            let opt_row = &res.rows[2 * i];
            let lbl_row = &res.rows[2 * i + 1];
            assert_eq!(opt_row.series, "dwt-opt");
            assert_eq!(opt_row.cost, dwt_opt::min_cost(d, b));
            assert_eq!(
                lbl_row.cost,
                layer_by_layer::cost(d, b, LayerByLayerOptions::default())
            );
            assert_eq!(opt_row.lower_bound, algorithmic_lower_bound(d.cdag()));
        }
    }

    #[test]
    fn memo_is_shared_across_runs() {
        let memo = Memo::new();
        let plan = SweepPlan::new("test", BudgetSpec::Explicit(vec![112, 160]))
            .workload(dwt16())
            .series(Series::scheduler(&DwtOpt));
        let first = plan.run_with(&memo);
        let misses = memo.misses();
        let second = plan.run_with(&memo);
        assert_eq!(memo.misses(), misses, "second run is fully cached");
        assert!(memo.hits() >= 2);
        assert_eq!(first.to_csv(), second.to_csv());
    }

    #[test]
    fn peaks_respect_the_budget() {
        let plan = SweepPlan::new("test", BudgetSpec::Explicit(vec![160, 320]))
            .workload(dwt16())
            .series(Series::scheduler(&DwtOpt))
            .series(Series::ioopt_lb())
            .measure_peak(true);
        let res = plan.run();
        for row in &res.rows {
            match row.series.as_str() {
                "dwt-opt" => {
                    let peak = row.peak.expect("scheduler rows have peaks");
                    assert!(peak <= row.budget);
                }
                "ioopt-lb" => {
                    assert_eq!(row.peak, None, "model rows have no schedule");
                    assert_eq!(row.cost, None, "ioopt does not apply to DWT");
                }
                other => panic!("unexpected series {other}"),
            }
        }
    }

    #[test]
    fn min_memory_plan_matches_direct_search() {
        let g = dwt16();
        let AnyGraph::Dwt(ref d) = g else {
            unreachable!()
        };
        let cdag = d.cdag();
        let lb = algorithmic_lower_bound(cdag);
        let expect = pebblyn_schedulers::min_memory(
            |b| dwt_opt::min_cost(d, b),
            lb,
            MinMemoryOptions::for_graph(cdag).monotone(true),
        );
        let res = MinMemoryPlan::new("test")
            .workload(g.clone())
            .to_lower_bound(Series::scheduler(&DwtOpt))
            .run();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0].min_bits, expect);
        assert_eq!(res.rows[0].lower_bound, lb);
    }

    #[test]
    fn direct_entries_bypass_the_search() {
        let g = AnyGraph::build(Workload::Mvm { m: 4, n: 5 }, WeightScheme::Equal(16)).unwrap();
        let AnyGraph::Mvm(ref m) = g else {
            unreachable!()
        };
        let expect = mvm_tiling::min_memory(m);
        let res = MinMemoryPlan::new("test")
            .workload(g.clone())
            .direct("mvm-tiling", |g| match g {
                AnyGraph::Mvm(m) => Some(mvm_tiling::min_memory(m)),
                _ => None,
            })
            .run();
        assert_eq!(res.rows[0].min_bits, Some(expect));
        assert_eq!(res.rows[0].series, "mvm-tiling");
    }

    #[test]
    fn ioopt_series_track_the_model() {
        let g = AnyGraph::build(Workload::Mvm { m: 8, n: 10 }, WeightScheme::Equal(16)).unwrap();
        let AnyGraph::Mvm(ref m) = g else {
            unreachable!()
        };
        let model = pebblyn_baselines::IoOptMvmModel::for_graph(m);
        for b in [64u64, 256, 1024] {
            assert_eq!(Series::ioopt_lb().cost(&g, b), Some(model.lower_bound(b)));
            assert_eq!(Series::ioopt_ub().cost(&g, b), model.upper_bound(b));
        }
    }
}
