//! Matrix-Vector Multiplication graphs `MVM(m, n)` — Definition 4.1.
//!
//! `MVM(m, n)` computes `y = A·x` for `A ∈ R^{m×n}`, `x ∈ R^n`.  Layer `S_1`
//! holds the `mn` matrix entries and `n` vector entries (column-major blocks
//! of `m + 1` nodes, vector entry first); `S_2` holds the `mn` elementwise
//! products; layers `S_3 … S_{n+1}` hold the running accumulations, `m` nodes
//! each.  Each output `y_r` is therefore the root of a left-deep binary
//! in-tree over the products of row `r` — exactly the shape the §4.3 tiling
//! scheduler exploits.

use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, CdagBuilder, NodeId};

/// A constructed `MVM(m, n)` graph with its structural metadata.
#[derive(Debug, Clone)]
pub struct MvmGraph {
    cdag: Cdag,
    m: usize,
    n: usize,
    scheme: WeightScheme,
    /// `layers[i - 1]` lists the nodes of `S_i` (1-based layers, `n+1` of
    /// them).
    layers: Vec<Vec<NodeId>>,
}

impl MvmGraph {
    /// Build `MVM(m, n)` under the given weight scheme.
    ///
    /// Requires `m ≥ 2` and `n ≥ 1` (Definition 4.1).
    pub fn new(m: usize, n: usize, scheme: WeightScheme) -> Result<Self, ParamError> {
        if m < 2 {
            return Err(ParamError(format!("MVM rows m={m} must be >= 2")));
        }
        if n < 1 {
            return Err(ParamError(format!("MVM columns n={n} must be >= 1")));
        }

        let s1 = m * n + n;
        let s2 = m * n;
        let acc_layers = n.saturating_sub(1); // S_3 … S_{n+1}
        let total = s1 + s2 + acc_layers * m;

        let mut b = CdagBuilder::with_capacity(total);
        // S_1: column-major blocks, vector entry first.
        for c in 1..=n {
            b.node(scheme.input_weight(), format!("x{c}"));
            for r in 1..=m {
                b.node(scheme.input_weight(), format!("a{r}_{c}"));
            }
        }
        // S_2: products, column-major.
        for c in 1..=n {
            for r in 1..=m {
                b.node(scheme.compute_weight(), format!("p{r}_{c}"));
            }
        }
        // S_3 … S_{n+1}: accumulators.
        for t in 2..=n {
            for r in 1..=m {
                b.node(scheme.compute_weight(), format!("s{r}_{t}"));
            }
        }

        let vector = |c: usize| NodeId(((c - 1) * (m + 1)) as u32);
        let matrix = |r: usize, c: usize| NodeId(((c - 1) * (m + 1) + r) as u32);
        let product = |r: usize, c: usize| NodeId((s1 + (c - 1) * m + r - 1) as u32);
        // Accumulator in layer S_{t+1}: the partial sum over columns 1..=t.
        let partial = |r: usize, t: usize| NodeId((s1 + s2 + (t - 2) * m + r - 1) as u32);

        // Rule (1): inputs feed products.
        for c in 1..=n {
            for r in 1..=m {
                b.edge(vector(c), product(r, c));
                b.edge(matrix(r, c), product(r, c));
            }
        }
        // Rules (2) + (3): products and partials chain into accumulators.
        // S_3 row r sums the column-1 and column-2 products.
        for t in 2..=n {
            for r in 1..=m {
                let prev = if t == 2 {
                    product(r, 1)
                } else {
                    partial(r, t - 1)
                };
                b.edge(prev, partial(r, t));
                b.edge(product(r, t), partial(r, t));
            }
        }

        let cdag = b
            .build()
            .map_err(|e| ParamError(format!("internal MVM construction error: {e}")))?;

        let mut layers = Vec::with_capacity(n + 1);
        layers.push(
            (1..=n)
                .flat_map(|c| std::iter::once(vector(c)).chain((1..=m).map(move |r| matrix(r, c))))
                .collect(),
        );
        layers.push(
            (1..=n)
                .flat_map(|c| (1..=m).map(move |r| product(r, c)))
                .collect(),
        );
        for t in 2..=n {
            layers.push((1..=m).map(|r| partial(r, t)).collect());
        }

        Ok(MvmGraph {
            cdag,
            m,
            n,
            scheme,
            layers,
        })
    }

    /// The underlying CDAG.
    #[inline]
    pub fn cdag(&self) -> &Cdag {
        &self.cdag
    }

    /// Number of matrix rows `m` (outputs).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of matrix columns `n` (vector length).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The weight scheme the graph was built with.
    #[inline]
    pub fn scheme(&self) -> WeightScheme {
        self.scheme
    }

    /// The layers `S_1 … S_{n+1}`.
    #[inline]
    pub fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }

    /// The vector input `x_c` (1-based column).
    pub fn vector(&self, c: usize) -> NodeId {
        debug_assert!((1..=self.n).contains(&c));
        NodeId(((c - 1) * (self.m + 1)) as u32)
    }

    /// The matrix input `a_{r,c}` (1-based row/column).
    pub fn matrix(&self, r: usize, c: usize) -> NodeId {
        debug_assert!((1..=self.m).contains(&r) && (1..=self.n).contains(&c));
        NodeId(((c - 1) * (self.m + 1) + r) as u32)
    }

    /// The product `p_{r,c} = a_{r,c} · x_c`.
    pub fn product(&self, r: usize, c: usize) -> NodeId {
        debug_assert!((1..=self.m).contains(&r) && (1..=self.n).contains(&c));
        NodeId((self.m * self.n + self.n + (c - 1) * self.m + r - 1) as u32)
    }

    /// The partial sum of row `r` over columns `1..=t` (requires
    /// `2 ≤ t ≤ n`); for `t = n` this is the output `y_r`.
    pub fn partial(&self, r: usize, t: usize) -> NodeId {
        debug_assert!((1..=self.m).contains(&r) && (2..=self.n).contains(&t));
        let base = self.m * self.n + self.n + self.m * self.n;
        NodeId((base + (t - 2) * self.m + r - 1) as u32)
    }

    /// The output node `y_r`.  For `n = 1` this is the product `p_{r,1}`.
    pub fn output(&self, r: usize) -> NodeId {
        if self.n == 1 {
            self.product(r, 1)
        } else {
            self.partial(r, self.n)
        }
    }

    /// All output nodes `y_1 … y_m`.
    pub fn outputs(&self) -> Vec<NodeId> {
        (1..=self.m).map(|r| self.output(r)).collect()
    }

    /// The accumulation node that consumes column `c`'s product of row `r`:
    /// `partial(r, c)` for `c ≥ 2`, or `None` for `c = 1` (the column-1
    /// product is consumed by `partial(r, 2)` as its left operand).
    pub fn accumulator_for(&self, r: usize, c: usize) -> Option<NodeId> {
        if c >= 2 && c <= self.n {
            Some(self.partial(r, c))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal16(m: usize, n: usize) -> MvmGraph {
        MvmGraph::new(m, n, WeightScheme::Equal(16)).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(MvmGraph::new(1, 3, WeightScheme::Equal(16)).is_err());
        assert!(MvmGraph::new(2, 0, WeightScheme::Equal(16)).is_err());
    }

    #[test]
    fn mvm_2_3_matches_figure_4b() {
        let g = equal16(2, 3);
        let c = g.cdag();
        // S_1 = 9, S_2 = 6, S_3 = 2, S_4 = 2.
        assert_eq!(c.len(), 9 + 6 + 2 + 2);
        let sizes: Vec<usize> = g.layers().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![9, 6, 2, 2]);
        // x_1 feeds both column-1 products.
        assert_eq!(c.succs(g.vector(1)), &[g.product(1, 1), g.product(2, 1)]);
        // a_{2,3} feeds p_{2,3} only.
        assert_eq!(c.succs(g.matrix(2, 3)), &[g.product(2, 3)]);
        // Column-1 products feed S_3 directly; partials chain.
        assert_eq!(c.succs(g.product(1, 1)), &[g.partial(1, 2)]);
        assert_eq!(c.succs(g.partial(1, 2)), &[g.partial(1, 3)]);
        // Outputs are the last partial layer.
        assert_eq!(g.outputs(), vec![g.partial(1, 3), g.partial(2, 3)]);
        assert_eq!(c.sinks(), g.outputs());
    }

    #[test]
    fn mvm_3_2_matches_figure_4a() {
        let g = equal16(3, 2);
        let c = g.cdag();
        assert_eq!(c.len(), (3 * 2 + 2) + 3 * 2 + 3);
        assert_eq!(c.sinks().len(), 3);
        // Every product has exactly the vector + matrix entry as parents.
        for r in 1..=3 {
            for col in 1..=2 {
                assert_eq!(
                    c.preds(g.product(r, col)),
                    &[g.vector(col), g.matrix(r, col)]
                );
            }
        }
        // y_r = p_{r,1} + p_{r,2}.
        for r in 1..=3 {
            assert_eq!(
                c.preds(g.partial(r, 2)),
                &[g.product(r, 1), g.product(r, 2)]
            );
        }
    }

    #[test]
    fn single_column_outputs_are_products() {
        let g = equal16(4, 1);
        let c = g.cdag();
        assert_eq!(c.len(), 5 + 4);
        assert_eq!(
            g.outputs(),
            (1..=4).map(|r| g.product(r, 1)).collect::<Vec<_>>()
        );
        assert_eq!(c.sinks().len(), 4);
    }

    #[test]
    fn weights_follow_scheme() {
        let g = MvmGraph::new(3, 2, WeightScheme::DoubleAccumulator(16)).unwrap();
        let c = g.cdag();
        for v in c.nodes() {
            let expected = if c.is_source(v) { 16 } else { 32 };
            assert_eq!(c.weight(v), expected, "node {v} ({})", c.name(v));
        }
    }

    #[test]
    fn paper_scale_builds() {
        let g = equal16(96, 120);
        let c = g.cdag();
        assert_eq!(c.len(), (96 * 120 + 120) + 96 * 120 + 119 * 96);
        assert_eq!(c.sinks().len(), 96);
        assert_eq!(c.sources().len(), 96 * 120 + 120);
    }

    #[test]
    fn row_trees_are_left_deep() {
        let g = equal16(2, 4);
        let c = g.cdag();
        // Walking back from the output of row 1 visits partials then the
        // column-1 product.
        let mut v = g.output(1);
        for t in (3..=4).rev() {
            assert_eq!(c.preds(v)[0], g.partial(1, t - 1));
            assert_eq!(c.preds(v)[1], g.product(1, t));
            v = g.partial(1, t - 1);
        }
        assert_eq!(c.preds(v), &[g.product(1, 1), g.product(1, 2)]);
    }

    #[test]
    fn accumulator_for_mapping() {
        let g = equal16(3, 3);
        assert_eq!(g.accumulator_for(2, 1), None);
        assert_eq!(g.accumulator_for(2, 2), Some(g.partial(2, 2)));
        assert_eq!(g.accumulator_for(2, 3), Some(g.partial(2, 3)));
        assert_eq!(g.accumulator_for(2, 4), None);
    }
}
