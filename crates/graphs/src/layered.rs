//! Layered views of CDAGs, consumed by the layer-by-layer baseline
//! scheduler (§5.1).

use crate::dwt::DwtGraph;
use crate::mvm::MvmGraph;
use pebblyn_core::{Cdag, NodeId};

/// A CDAG together with a partition of its nodes into ordered layers
/// `S_1 … S_L`, where `S_1` holds the inputs and every node's predecessors
/// live in strictly earlier layers.
pub trait Layered {
    /// The underlying CDAG.
    fn cdag(&self) -> &Cdag;
    /// The layers in evaluation order, inputs first.
    fn layers(&self) -> &[Vec<NodeId>];
}

impl Layered for DwtGraph {
    fn cdag(&self) -> &Cdag {
        DwtGraph::cdag(self)
    }
    fn layers(&self) -> &[Vec<NodeId>] {
        DwtGraph::layers(self)
    }
}

impl Layered for MvmGraph {
    fn cdag(&self) -> &Cdag {
        MvmGraph::cdag(self)
    }
    fn layers(&self) -> &[Vec<NodeId>] {
        MvmGraph::layers(self)
    }
}

/// A free-standing layered graph computed from any CDAG by longest-path
/// layering (each node's layer is 1 + the max layer of its predecessors).
#[derive(Debug, Clone)]
pub struct LayeredCdag {
    cdag: Cdag,
    layers: Vec<Vec<NodeId>>,
}

/// Longest-path layering of an arbitrary CDAG (each node's layer is 1 +
/// the max layer of its predecessors; sources in layer 0).
pub fn layering(cdag: &Cdag) -> Vec<Vec<NodeId>> {
    let mut level = vec![0usize; cdag.len()];
    for &v in cdag.topo_order() {
        level[v.index()] = cdag
            .preds(v)
            .iter()
            .map(|&p| level[p.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    let depth = level.iter().copied().max().unwrap_or(0);
    let mut layers = vec![Vec::new(); depth + 1];
    for v in cdag.nodes() {
        layers[level[v.index()]].push(v);
    }
    layers
}

impl LayeredCdag {
    /// Layer an arbitrary CDAG by longest path from the sources.
    pub fn from_cdag(cdag: Cdag) -> Self {
        let layers = layering(&cdag);
        LayeredCdag { cdag, layers }
    }
}

impl Layered for LayeredCdag {
    fn cdag(&self) -> &Cdag {
        &self.cdag
    }
    fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }
}

/// Check the `Layered` contract: inputs in `S_1`, predecessors strictly
/// earlier, every node in exactly one layer.  Used in tests and debug
/// assertions.
pub fn check_layering<L: Layered>(g: &L) -> bool {
    let cdag = g.cdag();
    let mut layer_of = vec![usize::MAX; cdag.len()];
    for (li, layer) in g.layers().iter().enumerate() {
        for &v in layer {
            if layer_of[v.index()] != usize::MAX {
                return false;
            }
            layer_of[v.index()] = li;
        }
    }
    if layer_of.contains(&usize::MAX) {
        return false;
    }
    cdag.nodes().all(|v| {
        cdag.preds(v)
            .iter()
            .all(|&p| layer_of[p.index()] < layer_of[v.index()])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightScheme;

    #[test]
    fn dwt_and_mvm_layerings_are_valid() {
        let dwt = DwtGraph::new(16, 3, WeightScheme::Equal(16)).unwrap();
        assert!(check_layering(&dwt));
        let mvm = MvmGraph::new(4, 5, WeightScheme::DoubleAccumulator(16)).unwrap();
        assert!(check_layering(&mvm));
    }

    #[test]
    fn longest_path_layering_matches_dwt() {
        let dwt = DwtGraph::new(8, 3, WeightScheme::Equal(16)).unwrap();
        let layered = LayeredCdag::from_cdag(dwt.cdag().clone());
        assert!(check_layering(&layered));
        // The DWT's own layering puts coefficients of S_2 in layer 2, and so
        // does longest-path layering (their only parents are inputs).
        assert_eq!(layered.layers().len(), dwt.layers().len());
        for (a, b) in layered.layers().iter().zip(dwt.layers()) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
