//! k-ary tree graphs — Definition 3.6.
//!
//! A k-ary tree graph is a rooted in-tree: a unique sink `r`, every other
//! node has a directed path to `r`, and in-degrees are bounded by `k`.
//! These are the graphs for which the paper's Eq. (6) dynamic program
//! produces exact optimal schedules (Lemma 3.7 / Theorem 3.8).

use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, CdagBuilder, NodeId, Weight};
use rand::Rng;

/// A complete k-ary in-tree of the given depth: `k^depth` leaf inputs, every
/// internal node has exactly `k` children feeding it.
///
/// `depth ≥ 1`, `k ≥ 1`.  The root is the single sink.
pub fn full_kary(k: usize, depth: usize, scheme: WeightScheme) -> Result<Cdag, ParamError> {
    if k < 1 || depth < 1 {
        return Err(ParamError(format!(
            "full k-ary tree needs k >= 1 and depth >= 1 (got k={k}, depth={depth})"
        )));
    }
    let leaves = k
        .checked_pow(depth as u32)
        .ok_or_else(|| ParamError(format!("k^depth overflows (k={k}, depth={depth})")))?;
    let mut b = CdagBuilder::new();
    // Build level by level, leaves first.
    let mut prev: Vec<NodeId> = (0..leaves)
        .map(|i| b.node(scheme.input_weight(), format!("leaf{i}")))
        .collect();
    for lvl in 1..=depth {
        let width = prev.len() / k;
        let mut cur = Vec::with_capacity(width);
        for i in 0..width {
            let v = b.node(scheme.compute_weight(), format!("t{lvl}_{i}"));
            for j in 0..k {
                b.edge(prev[i * k + j], v);
            }
            cur.push(v);
        }
        prev = cur;
    }
    debug_assert_eq!(prev.len(), 1);
    Ok(b.build().expect("full k-ary tree is structurally valid"))
}

/// A chain (path) graph: the degenerate `k = 1` tree.
/// `x -> t1 -> t2 -> … -> t_{len-1}` with `len ≥ 2` nodes total.
pub fn chain(len: usize, scheme: WeightScheme) -> Result<Cdag, ParamError> {
    if len < 2 {
        return Err(ParamError(format!("chain needs >= 2 nodes (got {len})")));
    }
    let mut b = CdagBuilder::new();
    let mut prev = b.node(scheme.input_weight(), "x");
    for i in 1..len {
        let v = b.node(scheme.compute_weight(), format!("t{i}"));
        b.edge(prev, v);
        prev = v;
    }
    Ok(b.build().expect("chain is structurally valid"))
}

/// A left-deep caterpillar: the accumulation pattern of MVM rows.
/// `acc_1 = f(in_1, in_2)`, `acc_t = f(acc_{t-1}, in_{t+1})`.
///
/// `leaves ≥ 2` is the number of inputs.
pub fn caterpillar(leaves: usize, scheme: WeightScheme) -> Result<Cdag, ParamError> {
    if leaves < 2 {
        return Err(ParamError(format!(
            "caterpillar needs >= 2 leaves (got {leaves})"
        )));
    }
    let mut b = CdagBuilder::new();
    let ins: Vec<NodeId> = (0..leaves)
        .map(|i| b.node(scheme.input_weight(), format!("in{i}")))
        .collect();
    let mut acc = b.node(scheme.compute_weight(), "acc1");
    b.edge(ins[0], acc);
    b.edge(ins[1], acc);
    for (t, &leaf) in ins.iter().enumerate().skip(2) {
        let next = b.node(scheme.compute_weight(), format!("acc{}", t));
        b.edge(acc, next);
        b.edge(leaf, next);
        acc = next;
    }
    Ok(b.build().expect("caterpillar is structurally valid"))
}

/// A uniformly random in-tree with `internal` internal nodes, each with a
/// random in-degree in `1..=k_max`; leaves are created on demand.
///
/// Used by property tests: the result is always a valid k-ary tree graph
/// (single sink, bounded in-degree).
pub fn random_tree<R: Rng>(
    internal: usize,
    k_max: usize,
    scheme: WeightScheme,
    rng: &mut R,
) -> Result<Cdag, ParamError> {
    if internal < 1 || k_max < 1 {
        return Err(ParamError(format!(
            "random tree needs internal >= 1 and k_max >= 1 (got {internal}, {k_max})"
        )));
    }
    let mut b = CdagBuilder::new();
    // Grow from the root downward: maintain a frontier of nodes that still
    // need children; each either becomes internal (recurse) or a leaf.
    // We cap internal-node count and then close every remaining slot with a
    // leaf input.
    let root = b.node(scheme.compute_weight(), "root");
    let mut open = vec![root];
    let mut remaining = internal - 1;
    while let Some(v) = open.pop() {
        let deg = rng.gen_range(1..=k_max);
        for _ in 0..deg {
            if remaining > 0 && rng.gen_bool(0.6) {
                let child = b.node(scheme.compute_weight(), format!("t{}", b.len()));
                b.edge(child, v);
                open.push(child);
                remaining -= 1;
            } else {
                let leaf = b.node(scheme.input_weight(), format!("leaf{}", b.len()));
                b.edge(leaf, v);
            }
        }
    }
    Ok(b.build().expect("random tree is structurally valid"))
}

/// A random weighted in-tree where every node (including leaves) gets an
/// independent random weight in `w_range` — exercises genuinely weighted
/// schedules rather than the two-level Equal/DA schemes.
pub fn random_weighted_tree<R: Rng>(
    internal: usize,
    k_max: usize,
    w_range: std::ops::RangeInclusive<Weight>,
    rng: &mut R,
) -> Result<Cdag, ParamError> {
    let base = random_tree(internal, k_max, WeightScheme::Equal(1), rng)?;
    let mut b = CdagBuilder::with_capacity(base.len());
    for v in base.nodes() {
        b.node(rng.gen_range(w_range.clone()), base.name(v).to_string());
    }
    for v in base.nodes() {
        for &p in base.preds(v) {
            b.edge(p, v);
        }
    }
    Ok(b.build().expect("reweighted tree is structurally valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn full_binary_tree_shape() {
        let t = full_kary(2, 3, WeightScheme::Equal(16)).unwrap();
        assert_eq!(t.len(), 8 + 4 + 2 + 1);
        assert!(t.is_in_tree());
        assert_eq!(t.max_in_degree(), 2);
        assert_eq!(t.sources().len(), 8);
        assert_eq!(t.sinks().len(), 1);
    }

    #[test]
    fn full_ternary_tree_shape() {
        let t = full_kary(3, 2, WeightScheme::DoubleAccumulator(8)).unwrap();
        assert_eq!(t.len(), 9 + 3 + 1);
        assert!(t.is_in_tree());
        assert_eq!(t.max_in_degree(), 3);
        for v in t.nodes() {
            let w = if t.is_source(v) { 8 } else { 16 };
            assert_eq!(t.weight(v), w);
        }
    }

    #[test]
    fn unary_tree_is_chain() {
        let t = full_kary(1, 4, WeightScheme::Equal(1)).unwrap();
        assert_eq!(t.len(), 5);
        assert!(t.is_in_tree());
        assert_eq!(t.max_in_degree(), 1);
    }

    #[test]
    fn chain_shape() {
        let c = chain(5, WeightScheme::Equal(16)).unwrap();
        assert_eq!(c.len(), 5);
        assert!(c.is_in_tree());
        assert_eq!(c.sources().len(), 1);
    }

    #[test]
    fn caterpillar_shape() {
        let c = caterpillar(5, WeightScheme::Equal(16)).unwrap();
        // 5 leaves + 4 accumulators.
        assert_eq!(c.len(), 9);
        assert!(c.is_in_tree());
        assert_eq!(c.max_in_degree(), 2);
        assert_eq!(c.sources().len(), 5);
    }

    #[test]
    fn random_trees_are_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50 {
            let t = random_tree(6, 3, WeightScheme::Equal(4), &mut rng).unwrap();
            assert!(t.is_in_tree(), "random tree must be an in-tree");
            assert!(t.max_in_degree() <= 3);
            assert_eq!(t.sinks().len(), 1);
        }
    }

    #[test]
    fn random_weighted_trees_have_weights_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..20 {
            let t = random_weighted_tree(5, 2, 1..=10, &mut rng).unwrap();
            assert!(t.is_in_tree());
            for v in t.nodes() {
                assert!((1..=10).contains(&t.weight(v)));
            }
        }
    }

    #[test]
    fn rejects_bad_params() {
        assert!(full_kary(0, 2, WeightScheme::Equal(1)).is_err());
        assert!(full_kary(2, 0, WeightScheme::Equal(1)).is_err());
        assert!(chain(1, WeightScheme::Equal(1)).is_err());
        assert!(caterpillar(1, WeightScheme::Equal(1)).is_err());
    }
}
