//! # pebblyn-graphs — dataflow graph constructions for the WRBPG
//!
//! Parameterized builders for every CDAG family used in the paper:
//!
//! * [`dwt`] — the Discrete Wavelet Transform graphs `DWT(n, d)` of
//!   Definition 3.1, including the pruning of Lemma 3.2,
//! * [`mvm`] — the Matrix-Vector Multiplication graphs `MVM(m, n)` of
//!   Definition 4.1,
//! * [`tree`] — k-ary tree graphs (Definition 3.6): full trees, chains,
//!   caterpillars and random trees,
//! * [`testgraphs`] — auxiliary shapes (diamonds, random DAGs, FFT
//!   butterflies) used for validation and extensions,
//! * [`weights`] — the node-weight configurations of §5.1 (*Equal* and
//!   *Double Accumulator*).
//!
//! Each principal family returns a wrapper struct ([`DwtGraph`],
//! [`MvmGraph`]) that owns the [`Cdag`](pebblyn_core::Cdag) and exposes the
//! structural metadata schedulers need: layer membership, node coordinates,
//! and sibling relations.
//!
//! ```
//! use pebblyn_graphs::{DwtGraph, WeightScheme};
//!
//! // The paper's headline workload: 256 samples, 8 levels, 16-bit words.
//! let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
//! assert_eq!(dwt.cdag().len(), 766);
//! assert_eq!(dwt.tree_roots().len(), 1);       // Lemma 3.2 pruning: one tree
//! assert!(dwt.satisfies_pruning_condition());  // coefficients <= averages
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod any;
pub mod banded;
pub mod conv;
pub mod dwt;
pub mod dwt2d;
pub mod dwt_coarse;
pub mod layered;
pub mod mvm;
pub mod testgraphs;
pub mod tree;
pub mod weights;

pub use any::{AnyGraph, Workload};
pub use banded::BandedMvmGraph;
pub use conv::ConvGraph;
pub use dwt::DwtGraph;
pub use dwt2d::Dwt2dGraph;
pub use dwt_coarse::CoarseDwtGraph;
pub use layered::Layered;
pub use mvm::MvmGraph;
pub use weights::WeightScheme;

use std::fmt;

/// Error raised when graph-family parameters are invalid
/// (e.g. `DWT(n, d)` with `n` not a multiple of `2^d`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(pub String);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid graph parameters: {}", self.0)
    }
}

impl std::error::Error for ParamError {}
