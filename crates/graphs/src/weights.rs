//! Node-weight configurations (§5.1 of the paper).

use pebblyn_core::Weight;
use std::fmt;

/// How node weights are assigned when constructing a workload graph.
///
/// In the paper's cost model a node's weight is the number of bits its
/// result occupies, so weights encode numerical precision:
///
/// * [`WeightScheme::Equal`] — every node has the same word size; the WRBPG
///   then coincides with the classic (unweighted) red-blue pebble game with
///   `R = B / word` red pebbles.
/// * [`WeightScheme::DoubleAccumulator`] — non-input nodes (partial or
///   accumulated results) carry **twice** the input word size, the common
///   mixed-precision configuration where accumulations need extra headroom
///   (e.g. 16-bit samples, 32-bit accumulators).
/// * [`WeightScheme::Custom`] — arbitrary input/compute weights for
///   ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeightScheme {
    /// All nodes weigh one `word` of the given bit width.
    Equal(Weight),
    /// Inputs weigh `word`; every computed node weighs `2 * word`.
    DoubleAccumulator(Weight),
    /// Explicit input/compute weights.
    Custom {
        /// Weight of source (input) nodes, in bits.
        input: Weight,
        /// Weight of computed (non-source) nodes, in bits.
        compute: Weight,
    },
}

impl WeightScheme {
    /// Weight (bits) assigned to source nodes.
    #[inline]
    pub fn input_weight(self) -> Weight {
        match self {
            WeightScheme::Equal(w) | WeightScheme::DoubleAccumulator(w) => w,
            WeightScheme::Custom { input, .. } => input,
        }
    }

    /// Weight (bits) assigned to computed nodes.
    #[inline]
    pub fn compute_weight(self) -> Weight {
        match self {
            WeightScheme::Equal(w) => w,
            WeightScheme::DoubleAccumulator(w) => 2 * w,
            WeightScheme::Custom { compute, .. } => compute,
        }
    }

    /// The memory *word size* in bits used when converting budgets to words
    /// (Table 1 reports sizes in 16-bit words).
    #[inline]
    pub fn word_bits(self) -> Weight {
        self.input_weight()
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            WeightScheme::Equal(_) => "Equal",
            WeightScheme::DoubleAccumulator(_) => "DA",
            WeightScheme::Custom { .. } => "Custom",
        }
    }

    /// The two configurations evaluated in §5 at the standard 16-bit BCI
    /// sample width.
    pub fn paper_configs() -> [WeightScheme; 2] {
        [WeightScheme::Equal(16), WeightScheme::DoubleAccumulator(16)]
    }
}

impl fmt::Display for WeightScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightScheme::Equal(w) => write!(f, "Equal({w}b)"),
            WeightScheme::DoubleAccumulator(w) => write!(f, "DoubleAccumulator({w}b)"),
            WeightScheme::Custom { input, compute } => {
                write!(f, "Custom(in={input}b, comp={compute}b)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_gives_uniform_weights() {
        let s = WeightScheme::Equal(16);
        assert_eq!(s.input_weight(), 16);
        assert_eq!(s.compute_weight(), 16);
        assert_eq!(s.label(), "Equal");
    }

    #[test]
    fn double_accumulator_doubles_computes() {
        let s = WeightScheme::DoubleAccumulator(16);
        assert_eq!(s.input_weight(), 16);
        assert_eq!(s.compute_weight(), 32);
        assert_eq!(s.word_bits(), 16);
    }

    #[test]
    fn custom_is_explicit() {
        let s = WeightScheme::Custom {
            input: 8,
            compute: 24,
        };
        assert_eq!(s.input_weight(), 8);
        assert_eq!(s.compute_weight(), 24);
        assert_eq!(format!("{s}"), "Custom(in=8b, comp=24b)");
    }
}
