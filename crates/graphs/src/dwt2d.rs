//! Separable 2-D DWT graphs — image pipelines for the generic schedulers.
//!
//! BCI research systems also compress electrode-array *frames* (a 2-D grid
//! of channel samples) and spectrogram images; the standard tool is the
//! separable 2-D wavelet transform: one 1-D transform pass over the rows,
//! one over the columns, recursing on the LL (average/average) quadrant.
//! Unlike the 1-D `DWT(n, d)`, the column pass consumes values *across*
//! row transforms, so the graph is not a forest of trees — it exercises
//! the generic (Belady / layer-by-layer) schedulers rather than the tree
//! DPs, and its minimum memory is governed by how many row results must
//! stay live for the column pass.

use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, CdagBuilder, NodeId};

/// A separable `levels`-level 2-D DWT over an `n × n` image.
#[derive(Debug, Clone)]
pub struct Dwt2dGraph {
    cdag: Cdag,
    n: usize,
    levels: usize,
    scheme: WeightScheme,
    /// Pixel grid: `pixels[r][c]`.
    pixels: Vec<Vec<NodeId>>,
    /// Per level: the four quadrants after the column pass
    /// (`ll, lh, hl, hh`), each `m/2 × m/2` where `m` is the level's input
    /// size.
    quadrants: Vec<Quadrants>,
    layers: Vec<Vec<NodeId>>,
}

/// The four subbands produced by one 2-D level.
#[derive(Debug, Clone)]
pub struct Quadrants {
    /// Average/average — input to the next level (or final output).
    pub ll: Vec<Vec<NodeId>>,
    /// Average/detail.
    pub lh: Vec<Vec<NodeId>>,
    /// Detail/average.
    pub hl: Vec<Vec<NodeId>>,
    /// Detail/detail.
    pub hh: Vec<Vec<NodeId>>,
}

impl Dwt2dGraph {
    /// Build the graph.  Requires `n` a positive multiple of `2^levels`
    /// and `levels ≥ 1`.
    pub fn new(n: usize, levels: usize, scheme: WeightScheme) -> Result<Self, ParamError> {
        if levels < 1 {
            return Err(ParamError("2-D DWT needs levels >= 1".into()));
        }
        if levels >= usize::BITS as usize
            || n == 0
            || !n.is_multiple_of(1usize << levels)
            || n / (1 << levels) == 0
        {
            return Err(ParamError(format!(
                "2-D DWT size n={n} must be a positive multiple of 2^{levels} with nonzero LL"
            )));
        }
        let w_in = scheme.input_weight();
        let w_c = scheme.compute_weight();
        let mut b = CdagBuilder::new();
        let pixels: Vec<Vec<NodeId>> = (0..n)
            .map(|r| (0..n).map(|c| b.node(w_in, format!("px{r}_{c}"))).collect())
            .collect();

        let mut layers: Vec<Vec<NodeId>> = vec![pixels.iter().flatten().copied().collect()];
        let mut quadrants = Vec::with_capacity(levels);
        let mut grid = pixels.clone(); // current LL input, m x m
        for lvl in 1..=levels {
            let m = grid.len();
            let half = m / 2;
            // Row pass: each row -> L (averages) and H (coefficients),
            // both m x half.
            let mut row_l = vec![vec![NodeId(0); half]; m];
            let mut row_h = vec![vec![NodeId(0); half]; m];
            let mut row_layer = Vec::with_capacity(m * m);
            for r in 0..m {
                for t in 0..half {
                    let a = b.node(w_c, format!("rL{lvl}_{r}_{t}"));
                    let h = b.node(w_c, format!("rH{lvl}_{r}_{t}"));
                    for node in [a, h] {
                        b.edge(grid[r][2 * t], node);
                        b.edge(grid[r][2 * t + 1], node);
                    }
                    row_l[r][t] = a;
                    row_h[r][t] = h;
                    row_layer.push(a);
                    row_layer.push(h);
                }
            }
            layers.push(row_layer);
            // Column pass over both halves.
            let mut col = |src: &Vec<Vec<NodeId>>,
                           tag: &str|
             -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>, Vec<NodeId>) {
                let mut avg = vec![vec![NodeId(0); half]; half];
                let mut det = vec![vec![NodeId(0); half]; half];
                let mut layer = Vec::with_capacity(2 * half * half);
                for t in 0..half {
                    for c in 0..half {
                        let a = b.node(w_c, format!("c{tag}a{lvl}_{t}_{c}"));
                        let d = b.node(w_c, format!("c{tag}d{lvl}_{t}_{c}"));
                        for node in [a, d] {
                            b.edge(src[2 * t][c], node);
                            b.edge(src[2 * t + 1][c], node);
                        }
                        avg[t][c] = a;
                        det[t][c] = d;
                        layer.push(a);
                        layer.push(d);
                    }
                }
                (avg, det, layer)
            };
            let (ll, lh, mut l_layer) = col(&row_l, "L");
            let (hl, hh, h_layer) = col(&row_h, "H");
            l_layer.extend(h_layer);
            layers.push(l_layer);
            quadrants.push(Quadrants {
                ll: ll.clone(),
                lh,
                hl,
                hh,
            });
            grid = ll;
        }

        let cdag = b
            .build()
            .map_err(|e| ParamError(format!("internal 2-D DWT error: {e}")))?;
        Ok(Dwt2dGraph {
            cdag,
            n,
            levels,
            scheme,
            pixels,
            quadrants,
            layers,
        })
    }

    /// The weight configuration the graph was built with.
    #[inline]
    pub fn scheme(&self) -> WeightScheme {
        self.scheme
    }

    /// The underlying CDAG.
    #[inline]
    pub fn cdag(&self) -> &Cdag {
        &self.cdag
    }

    /// Image side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Decomposition levels.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Pixel `(row, col)`.
    pub fn pixel(&self, r: usize, c: usize) -> NodeId {
        self.pixels[r][c]
    }

    /// Quadrants of 1-based level `lvl`.
    pub fn level(&self, lvl: usize) -> &Quadrants {
        &self.quadrants[lvl - 1]
    }
}

impl crate::layered::Layered for Dwt2dGraph {
    fn cdag(&self) -> &Cdag {
        Dwt2dGraph::cdag(self)
    }
    fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layered::check_layering;

    #[test]
    fn structure_of_4x4_one_level() {
        let g = Dwt2dGraph::new(4, 1, WeightScheme::Equal(16)).unwrap();
        let c = g.cdag();
        // 16 pixels + row pass (16) + column pass (16).
        assert_eq!(c.len(), 48);
        // Outputs: LH + HL + HH + final LL = 4 quadrants of 2x2.
        assert_eq!(c.sinks().len(), 16);
        // Row average rL(0,0) consumes pixels (0,0) and (0,1) and feeds
        // two column nodes.
        let q = g.level(1);
        let row_avg_parents = c.preds(q.ll[0][0]);
        assert_eq!(row_avg_parents.len(), 2);
        // Column nodes consume vertically adjacent row results.
        assert!(check_layering(&g));
    }

    #[test]
    fn structure_of_8x8_two_levels() {
        let g = Dwt2dGraph::new(8, 2, WeightScheme::DoubleAccumulator(16)).unwrap();
        let c = g.cdag();
        // 64 px + L1 (64 + 64) + L2 (16 + 16).
        assert_eq!(c.len(), 64 + 128 + 32);
        // Sinks: L1 detail quadrants 3*16 + L2 all four quadrants 4*4.
        assert_eq!(c.sinks().len(), 48 + 16);
        // LL of level 1 feeds level 2 rows.
        let ll = g.level(1).ll[0][0];
        assert_eq!(c.out_degree(ll), 2);
        assert!(check_layering(&g));
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Dwt2dGraph::new(6, 2, WeightScheme::Equal(8)).is_err());
        assert!(Dwt2dGraph::new(4, 0, WeightScheme::Equal(8)).is_err());
        assert!(Dwt2dGraph::new(2, 2, WeightScheme::Equal(8)).is_err()); // 2 % 4 != 0
    }

    #[test]
    fn minimal_ll_is_allowed() {
        // n = 4, levels = 2 leaves a 1x1 LL — the previous test expects a
        // rejection; confirm which way the constructor rules.
        let r = Dwt2dGraph::new(4, 2, WeightScheme::Equal(8));
        // 4 / 2^2 = 1, nonzero — so it builds.
        assert!(r.is_ok());
    }

    #[test]
    fn single_level_decomposes_into_blocks() {
        // One 2-D Haar level is a block transform: each 2x2 pixel block
        // independently produces one entry of each quadrant.
        let g = Dwt2dGraph::new(4, 1, WeightScheme::Equal(16)).unwrap();
        assert_eq!(g.cdag().weakly_connected_components().len(), 4);
        assert!(!g.cdag().is_in_tree());
    }

    #[test]
    fn multi_level_couples_blocks() {
        // Each extra level joins four lower-level blocks, so the component
        // count is (n / 2^levels)²: 8x8 with two levels leaves 4, and a
        // full decomposition (n = 2^levels) leaves a single component.
        let g = Dwt2dGraph::new(8, 2, WeightScheme::Equal(16)).unwrap();
        assert_eq!(g.cdag().weakly_connected_components().len(), 4);
        let full = Dwt2dGraph::new(4, 2, WeightScheme::Equal(16)).unwrap();
        assert_eq!(full.cdag().weakly_connected_components().len(), 1);
        // Every pixel feeds two row nodes (average + detail): reuse.
        assert_eq!(g.cdag().out_degree(g.pixel(0, 0)), 2);
    }
}
