//! Banded matrix-vector multiplication — the paper's "structured sparse"
//! tensor claim made concrete.
//!
//! §4.3 notes the tiling approach "extends to dense and structured sparse
//! tensor multiplication".  A banded MVM is the canonical structured-sparse
//! kernel: row `r` of the matrix is zero outside columns `r … r+b−1`, so
//!
//! ```text
//! y_r = Σ_{j=0}^{b−1} a_{r,j} · x_{r+j},     r = 1 … n−b+1
//! ```
//!
//! Unlike the dense `MVM(m, n)` every vector entry feeds at most `b`
//! outputs (a sliding window, as in [`crate::conv`]), and unlike the FIR
//! filter the per-row weights `a_{r,j}` are *inputs*, not constants — so
//! the graph has `n + m·b` sources and exhibits both streaming and window
//! reuse.

use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, CdagBuilder, NodeId};

/// A constructed banded-MVM graph.
#[derive(Debug, Clone)]
pub struct BandedMvmGraph {
    cdag: Cdag,
    n: usize,
    b: usize,
    scheme: WeightScheme,
}

impl BandedMvmGraph {
    /// Build the banded MVM over an `n`-vector with bandwidth `b`
    /// (`2 ≤ b ≤ n`); there are `n − b + 1` output rows.
    pub fn new(n: usize, b: usize, scheme: WeightScheme) -> Result<Self, ParamError> {
        if b < 2 || b > n {
            return Err(ParamError(format!(
                "banded MVM needs 2 <= b <= n (got n={n}, b={b})"
            )));
        }
        let rows = n - b + 1;
        let mut builder = CdagBuilder::with_capacity(n + rows * b + rows * b + rows * (b - 1));
        // Sources: vector, then band entries row-major.
        for t in 1..=n {
            builder.node(scheme.input_weight(), format!("x{t}"));
        }
        for r in 1..=rows {
            for j in 0..b {
                builder.node(scheme.input_weight(), format!("a{r}_{j}"));
            }
        }
        // Products p_{r,j}, row-major.
        for r in 1..=rows {
            for j in 0..b {
                builder.node(scheme.compute_weight(), format!("p{r}_{j}"));
            }
        }
        // Partials s_{r,j} for j = 1..b-1 (s_{r,b-1} is the output y_r).
        for r in 1..=rows {
            for j in 1..b {
                builder.node(scheme.compute_weight(), format!("s{r}_{j}"));
            }
        }

        let g = Mapper { n, b, rows };
        for r in 1..=rows {
            for j in 0..b {
                builder.edge(g.vector(r + j), g.product(r, j));
                builder.edge(g.band(r, j), g.product(r, j));
            }
            builder.edge(g.product(r, 0), g.partial(r, 1));
            builder.edge(g.product(r, 1), g.partial(r, 1));
            for j in 2..b {
                builder.edge(g.partial(r, j - 1), g.partial(r, j));
                builder.edge(g.product(r, j), g.partial(r, j));
            }
        }

        let cdag = builder
            .build()
            .map_err(|e| ParamError(format!("internal banded MVM construction error: {e}")))?;
        Ok(BandedMvmGraph { cdag, n, b, scheme })
    }

    /// The underlying CDAG.
    #[inline]
    pub fn cdag(&self) -> &Cdag {
        &self.cdag
    }

    /// Vector length `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth `b`.
    #[inline]
    pub fn bandwidth(&self) -> usize {
        self.b
    }

    /// Number of output rows, `n − b + 1`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.n - self.b + 1
    }

    /// The weight scheme.
    #[inline]
    pub fn scheme(&self) -> WeightScheme {
        self.scheme
    }

    fn mapper(&self) -> Mapper {
        Mapper {
            n: self.n,
            b: self.b,
            rows: self.rows(),
        }
    }

    /// Vector entry `x_t` (1-based).
    pub fn vector(&self, t: usize) -> NodeId {
        self.mapper().vector(t)
    }

    /// Band entry `a_{r,j}` (row 1-based, `0 ≤ j < b`).
    pub fn band(&self, r: usize, j: usize) -> NodeId {
        self.mapper().band(r, j)
    }

    /// Product `p_{r,j} = a_{r,j} · x_{r+j}`.
    pub fn product(&self, r: usize, j: usize) -> NodeId {
        self.mapper().product(r, j)
    }

    /// Partial sum of row `r` over products `0..=j` (`1 ≤ j ≤ b−1`).
    pub fn partial(&self, r: usize, j: usize) -> NodeId {
        self.mapper().partial(r, j)
    }

    /// Output `y_r`.
    pub fn output(&self, r: usize) -> NodeId {
        self.partial(r, self.b - 1)
    }
}

/// Node-id arithmetic shared between construction and accessors.
struct Mapper {
    n: usize,
    b: usize,
    rows: usize,
}

impl Mapper {
    fn vector(&self, t: usize) -> NodeId {
        debug_assert!((1..=self.n).contains(&t));
        NodeId((t - 1) as u32)
    }
    fn band(&self, r: usize, j: usize) -> NodeId {
        debug_assert!((1..=self.rows).contains(&r) && j < self.b);
        NodeId((self.n + (r - 1) * self.b + j) as u32)
    }
    fn product(&self, r: usize, j: usize) -> NodeId {
        debug_assert!((1..=self.rows).contains(&r) && j < self.b);
        NodeId((self.n + self.rows * self.b + (r - 1) * self.b + j) as u32)
    }
    fn partial(&self, r: usize, j: usize) -> NodeId {
        debug_assert!((1..=self.rows).contains(&r) && (1..self.b).contains(&j));
        NodeId((self.n + 2 * self.rows * self.b + (r - 1) * (self.b - 1) + j - 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal(n: usize, b: usize) -> BandedMvmGraph {
        BandedMvmGraph::new(n, b, WeightScheme::Equal(16)).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(BandedMvmGraph::new(4, 1, WeightScheme::Equal(16)).is_err());
        assert!(BandedMvmGraph::new(3, 4, WeightScheme::Equal(16)).is_err());
    }

    #[test]
    fn structure_of_5_3() {
        let g = equal(5, 3);
        let c = g.cdag();
        assert_eq!(g.rows(), 3);
        // 5 vector + 9 band + 9 products + 6 partials.
        assert_eq!(c.len(), 5 + 9 + 9 + 6);
        assert_eq!(c.sources().len(), 14);
        assert_eq!(c.sinks().len(), 3);
        // Row 2 reads x_2, x_3, x_4.
        assert_eq!(c.preds(g.product(2, 0)), &[g.vector(2), g.band(2, 0)]);
        assert_eq!(c.preds(g.product(2, 2)), &[g.vector(4), g.band(2, 2)]);
        // x_3 feeds three rows (window overlap).
        assert_eq!(c.out_degree(g.vector(3)), 3);
        // Band entries feed exactly one product.
        assert_eq!(c.out_degree(g.band(1, 1)), 1);
        // The output accumulates the whole row.
        assert_eq!(c.preds(g.output(2)), &[g.partial(2, 1), g.product(2, 2)]);
    }

    #[test]
    fn weights_follow_scheme() {
        let g = BandedMvmGraph::new(6, 3, WeightScheme::DoubleAccumulator(16)).unwrap();
        let c = g.cdag();
        for v in c.nodes() {
            let expected = if c.is_source(v) { 16 } else { 32 };
            assert_eq!(c.weight(v), expected);
        }
    }

    #[test]
    fn full_band_is_one_dense_row_set() {
        let g = equal(4, 4);
        assert_eq!(g.rows(), 1);
        assert_eq!(g.cdag().sinks(), vec![g.output(1)]);
    }
}
