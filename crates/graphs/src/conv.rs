//! 1-D convolution (FIR filter) graphs — an extension workload.
//!
//! The paper motivates the DWT as representative of BCI filtering
//! pipelines ("DWT's recursive divide-and-conquer structure appears in
//! filters and fast Fourier transforms"); a direct FIR filter is the
//! simplest member of that family and, unlike the DWT, has *overlapping*
//! input windows: each input sample feeds up to `k` outputs, so schedules
//! must exploit data reuse (§4) to reach the algorithmic lower bound.
//!
//! `Conv(n, k)` computes the valid convolution of an `n`-sample signal
//! with a `k`-tap filter: `y_t = Σ_j h_j · x_{t+j}` for
//! `t = 1 … n−k+1`.  Filter coefficients are compile-time constants folded
//! into the operations (exactly as the DWT's `1/√2` factors are), so the
//! graph's sources are the signal samples only.  Each output is a left-deep
//! accumulation caterpillar over its window.

use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, CdagBuilder, NodeId};

/// A constructed `Conv(n, k)` graph with structural metadata.
#[derive(Debug, Clone)]
pub struct ConvGraph {
    cdag: Cdag,
    n: usize,
    k: usize,
    scheme: WeightScheme,
    layers: Vec<Vec<NodeId>>,
}

impl ConvGraph {
    /// Build `Conv(n, k)`: `n` samples filtered by `k` taps.
    ///
    /// Requires `2 ≤ k ≤ n`.
    pub fn new(n: usize, k: usize, scheme: WeightScheme) -> Result<Self, ParamError> {
        if k < 2 || k > n {
            return Err(ParamError(format!(
                "Conv needs 2 <= k <= n (got n={n}, k={k})"
            )));
        }
        let outputs = n - k + 1;
        let mut b = CdagBuilder::with_capacity(n + outputs * (k - 1));
        for t in 1..=n {
            b.node(scheme.input_weight(), format!("x{t}"));
        }
        // partial(t, j) accumulates taps 0..j of window t; stored layer by
        // layer (j = 2..=k), outputs are partial(t, k).
        for j in 2..=k {
            for t in 1..=outputs {
                b.node(scheme.compute_weight(), format!("p{t}_{j}"));
            }
        }

        let input = |t: usize| NodeId((t - 1) as u32);
        let partial = |t: usize, j: usize| NodeId((n + (j - 2) * outputs + t - 1) as u32);

        for t in 1..=outputs {
            b.edge(input(t), partial(t, 2));
            b.edge(input(t + 1), partial(t, 2));
            for j in 3..=k {
                b.edge(partial(t, j - 1), partial(t, j));
                b.edge(input(t + j - 1), partial(t, j));
            }
        }

        let cdag = b
            .build()
            .map_err(|e| ParamError(format!("internal Conv construction error: {e}")))?;
        let mut layers = Vec::with_capacity(k);
        layers.push((1..=n).map(input).collect());
        for j in 2..=k {
            layers.push((1..=outputs).map(|t| partial(t, j)).collect());
        }

        Ok(ConvGraph {
            cdag,
            n,
            k,
            scheme,
            layers,
        })
    }

    /// The underlying CDAG.
    #[inline]
    pub fn cdag(&self) -> &Cdag {
        &self.cdag
    }

    /// Signal length `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Filter length `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of outputs, `n − k + 1`.
    #[inline]
    pub fn outputs(&self) -> usize {
        self.n - self.k + 1
    }

    /// The weight scheme the graph was built with.
    #[inline]
    pub fn scheme(&self) -> WeightScheme {
        self.scheme
    }

    /// Input sample `x_t` (1-based).
    pub fn input(&self, t: usize) -> NodeId {
        debug_assert!((1..=self.n).contains(&t));
        NodeId((t - 1) as u32)
    }

    /// Partial sum of window `t` over taps `0..j` (`2 ≤ j ≤ k`).
    pub fn partial(&self, t: usize, j: usize) -> NodeId {
        debug_assert!((1..=self.outputs()).contains(&t));
        debug_assert!((2..=self.k).contains(&j));
        NodeId((self.n + (j - 2) * self.outputs() + t - 1) as u32)
    }

    /// Output `y_t = partial(t, k)`.
    pub fn output(&self, t: usize) -> NodeId {
        self.partial(t, self.k)
    }

    /// The layers `S_1 … S_k` (inputs first).
    #[inline]
    pub fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }
}

impl crate::layered::Layered for ConvGraph {
    fn cdag(&self) -> &Cdag {
        ConvGraph::cdag(self)
    }
    fn layers(&self) -> &[Vec<NodeId>] {
        ConvGraph::layers(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal(n: usize, k: usize) -> ConvGraph {
        ConvGraph::new(n, k, WeightScheme::Equal(16)).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(ConvGraph::new(4, 1, WeightScheme::Equal(16)).is_err());
        assert!(ConvGraph::new(3, 4, WeightScheme::Equal(16)).is_err());
    }

    #[test]
    fn structure_of_conv_5_3() {
        let g = equal(5, 3);
        let c = g.cdag();
        // 5 inputs + 2 layers of 3 partials.
        assert_eq!(c.len(), 5 + 3 + 3);
        assert_eq!(g.outputs(), 3);
        assert_eq!(c.sinks().len(), 3);
        assert_eq!(c.sources().len(), 5);
        // Window t = 2 touches inputs 2, 3, 4.
        assert_eq!(c.preds(g.partial(2, 2)), &[g.input(2), g.input(3)]);
        assert_eq!(c.preds(g.partial(2, 3)), &[g.partial(2, 2), g.input(4)]);
        // Overlap: input 3 feeds windows 1, 2 and 3.
        assert_eq!(c.out_degree(g.input(3)), 3);
    }

    #[test]
    fn two_tap_filter_is_dwt_like() {
        // k = 2 makes every output depend on exactly two adjacent inputs,
        // the same local structure as a single DWT level (without the
        // pairing): out-degree of interior inputs is 2.
        let g = equal(4, 2);
        let c = g.cdag();
        assert_eq!(c.len(), 4 + 3);
        assert_eq!(c.out_degree(g.input(2)), 2);
        assert_eq!(c.out_degree(g.input(1)), 1);
    }

    #[test]
    fn single_output_when_k_equals_n() {
        let g = equal(4, 4);
        assert_eq!(g.outputs(), 1);
        assert_eq!(g.cdag().sinks(), vec![g.output(1)]);
    }

    #[test]
    fn layers_are_valid() {
        let g = equal(8, 4);
        assert!(crate::layered::check_layering(&g));
    }

    #[test]
    fn weights_follow_scheme() {
        let g = ConvGraph::new(6, 3, WeightScheme::DoubleAccumulator(16)).unwrap();
        let c = g.cdag();
        for v in c.nodes() {
            let expected = if c.is_source(v) { 16 } else { 32 };
            assert_eq!(c.weight(v), expected);
        }
    }
}
