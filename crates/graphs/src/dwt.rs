//! Discrete Wavelet Transform graphs `DWT(n, d)` — Definition 3.1.
//!
//! The construction models the recursive Haar wavelet transform: layer `S_1`
//! holds the `n` input samples; each subsequent layer computes
//! averages (odd indices) and coefficients (even indices) of the previous
//! layer's averages.  Every average/coefficient pair shares the same two
//! parents, which is what makes the pruning of Lemma 3.2 possible: removing
//! the even-indexed (coefficient) nodes of layers `S_2 … S_{d+1}` leaves a
//! forest of `n / 2^d` independent binary in-trees.

use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, CdagBuilder, NodeId, Weight};

/// A constructed `DWT(n, d)` graph with its structural metadata.
#[derive(Debug, Clone)]
pub struct DwtGraph {
    cdag: Cdag,
    n: usize,
    d: usize,
    scheme: WeightScheme,
    /// Byte offset of each 1-based layer into the dense node ids;
    /// `offsets[i]` is the id of `v^i_1`.  Index 0 is unused.
    offsets: Vec<usize>,
    /// `layers[i - 1]` lists the nodes of `S_i`.
    layers: Vec<Vec<NodeId>>,
}

impl DwtGraph {
    /// Build `DWT(n, d)` under the given weight scheme.
    ///
    /// Requires `d ≥ 1` and `n = k · 2^d` for some `k ≥ 1` (Definition 3.1).
    pub fn new(n: usize, d: usize, scheme: WeightScheme) -> Result<Self, ParamError> {
        if d < 1 {
            return Err(ParamError(format!("DWT level d={d} must be >= 1")));
        }
        if d >= usize::BITS as usize || n == 0 || !n.is_multiple_of(1usize << d) {
            return Err(ParamError(format!(
                "DWT inputs n={n} must be a positive multiple of 2^d = {}",
                1u128 << d
            )));
        }

        // Layer sizes: |S_1| = |S_2| = n, |S_i| = |S_{i-1}| / 2 for i > 2.
        let mut sizes = vec![0usize; d + 2]; // 1-based
        sizes[1] = n;
        if d >= 1 {
            sizes[2] = n;
        }
        for i in 3..=d + 1 {
            sizes[i] = sizes[i - 1] / 2;
        }
        let mut offsets = vec![0usize; d + 2];
        for i in 2..=d + 1 {
            offsets[i] = offsets[i - 1] + sizes[i - 1];
        }
        let total: usize = sizes.iter().sum();

        let mut b = CdagBuilder::with_capacity(total);
        #[allow(clippy::needless_range_loop)] // indices mirror the paper's 1-based S_i
        for i in 1..=d + 1 {
            for j in 1..=sizes[i] {
                let (w, name): (Weight, String) = if i == 1 {
                    (scheme.input_weight(), format!("x{j}"))
                } else if j % 2 == 1 {
                    (scheme.compute_weight(), format!("a{}_{}", i - 1, j))
                } else {
                    (scheme.compute_weight(), format!("c{}_{}", i - 1, j))
                };
                b.node(w, name);
            }
        }

        let node = |i: usize, j: usize| NodeId((offsets[i] + j - 1) as u32);

        // Rule (1): inputs feed the first average/coefficient pair.
        for j in 1..=n {
            b.edge(node(1, j), node(2, j));
            if j % 2 == 1 {
                b.edge(node(1, j), node(2, j + 1));
            } else {
                b.edge(node(1, j), node(2, j - 1));
            }
        }
        // Rules (2) and (3): averages of S_i feed the pair in S_{i+1}.
        #[allow(clippy::needless_range_loop)] // indices mirror the paper's 1-based S_i
        for i in 2..=d {
            for j in (1..=sizes[i]).step_by(2) {
                match j % 4 {
                    1 => {
                        b.edge(node(i, j), node(i + 1, j.div_ceil(2)));
                        b.edge(node(i, j), node(i + 1, (j + 3) / 2));
                    }
                    3 => {
                        b.edge(node(i, j), node(i + 1, (j - 1) / 2));
                        b.edge(node(i, j), node(i + 1, j.div_ceil(2)));
                    }
                    _ => unreachable!("odd j mod 4 is 1 or 3"),
                }
            }
        }

        let cdag = b
            .build()
            .map_err(|e| ParamError(format!("internal DWT construction error: {e}")))?;
        let layers = (1..=d + 1)
            .map(|i| (1..=sizes[i]).map(|j| node(i, j)).collect())
            .collect();

        Ok(DwtGraph {
            cdag,
            n,
            d,
            scheme,
            offsets,
            layers,
        })
    }

    /// The largest admissible level `d*` for `n` inputs: the greatest `d ≥ 1`
    /// with `2^d | n` (used by Figure 6's `DWT(n, d*)` sweep).
    ///
    /// Returns `None` for odd or zero `n`.
    pub fn max_level(n: usize) -> Option<usize> {
        if n == 0 || !n.is_multiple_of(2) {
            return None;
        }
        Some(n.trailing_zeros() as usize)
    }

    /// The underlying CDAG.
    #[inline]
    pub fn cdag(&self) -> &Cdag {
        &self.cdag
    }

    /// The number of input samples `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The transform depth `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// The weight scheme the graph was built with.
    #[inline]
    pub fn scheme(&self) -> WeightScheme {
        self.scheme
    }

    /// Node `v^i_j` (both indices 1-based, `1 ≤ i ≤ d+1`).
    pub fn node(&self, layer: usize, j: usize) -> NodeId {
        debug_assert!(layer >= 1 && layer <= self.d + 1);
        debug_assert!(j >= 1 && j <= self.layers[layer - 1].len());
        NodeId((self.offsets[layer] + j - 1) as u32)
    }

    /// The layers `S_1 … S_{d+1}`; `layers()[i]` is `S_{i+1}`.
    #[inline]
    pub fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }

    /// The 1-based layer containing `v`.
    pub fn layer_of(&self, v: NodeId) -> usize {
        let idx = v.index();
        // offsets are increasing; find the last offset <= idx.
        let mut layer = 1;
        for i in 2..=self.d + 1 {
            if idx >= self.offsets[i] {
                layer = i;
            } else {
                break;
            }
        }
        layer
    }

    /// The 1-based index of `v` within its layer.
    pub fn index_in_layer(&self, v: NodeId) -> usize {
        v.index() - self.offsets[self.layer_of(v)] + 1
    }

    /// `true` iff `v` is an average node (odd index in a non-input layer).
    pub fn is_average(&self, v: NodeId) -> bool {
        self.layer_of(v) > 1 && self.index_in_layer(v) % 2 == 1
    }

    /// `true` iff `v` is a coefficient node (even index in a non-input
    /// layer).  These are exactly the nodes removed by the Lemma 3.2 pruning.
    pub fn is_coefficient(&self, v: NodeId) -> bool {
        self.layer_of(v) > 1 && self.index_in_layer(v).is_multiple_of(2)
    }

    /// The coefficient sibling `v^i_{j+1}` of an average node `v^i_j`
    /// (they share both parents), or `None` if `v` is not an average.
    pub fn sibling(&self, v: NodeId) -> Option<NodeId> {
        if self.is_average(v) {
            let i = self.layer_of(v);
            let j = self.index_in_layer(v);
            Some(self.node(i, j + 1))
        } else {
            None
        }
    }

    /// The roots (in the *original* graph) of the independent binary trees
    /// obtained by the Lemma 3.2 pruning: the average nodes of `S_{d+1}`.
    pub fn tree_roots(&self) -> Vec<NodeId> {
        self.layers[self.d]
            .iter()
            .copied()
            .filter(|&v| self.index_in_layer(v) % 2 == 1)
            .collect()
    }

    /// All coefficient (pruned) nodes, i.e. `v^i_j` with `i > 1`, `j` even.
    pub fn pruned_nodes(&self) -> Vec<NodeId> {
        self.cdag
            .nodes()
            .filter(|&v| self.is_coefficient(v))
            .collect()
    }

    /// Materialize the pruned graph `G'` of Lemma 3.2 (coefficients and
    /// their incoming edges removed), together with the original id of each
    /// pruned-graph node.
    ///
    /// The result is a forest of `n / 2^d` binary in-trees... except that the
    /// builder forbids a forest with isolated nodes only when nodes lose all
    /// edges, which cannot happen here (`d ≥ 1` keeps every input connected
    /// to its average).
    pub fn prune(&self) -> (Cdag, Vec<NodeId>) {
        let keep: Vec<NodeId> = self
            .cdag
            .nodes()
            .filter(|&v| !self.is_coefficient(v))
            .collect();
        let mut new_id = vec![u32::MAX; self.cdag.len()];
        for (i, &v) in keep.iter().enumerate() {
            new_id[v.index()] = i as u32;
        }
        let mut b = CdagBuilder::with_capacity(keep.len());
        for &v in &keep {
            b.node(self.cdag.weight(v), self.cdag.name(v).to_string());
        }
        for &v in &keep {
            for &p in self.cdag.preds(v) {
                debug_assert!(new_id[p.index()] != u32::MAX, "parents are never pruned");
                b.edge(NodeId(new_id[p.index()]), NodeId(new_id[v.index()]));
            }
        }
        let pruned = b.build().expect("pruned DWT graph is structurally valid");
        (pruned, keep)
    }

    /// Check the weight precondition of Lemma 3.2: within every non-input
    /// layer, each even-indexed (coefficient) node weighs at most its
    /// odd-indexed (average) sibling.
    pub fn satisfies_pruning_condition(&self) -> bool {
        self.cdag.nodes().all(|v| match self.sibling(v) {
            Some(u) => self.cdag.weight(u) <= self.cdag.weight(v),
            None => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal16(n: usize, d: usize) -> DwtGraph {
        DwtGraph::new(n, d, WeightScheme::Equal(16)).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(DwtGraph::new(4, 0, WeightScheme::Equal(16)).is_err());
        assert!(DwtGraph::new(6, 2, WeightScheme::Equal(16)).is_err()); // 6 not mult of 4
        assert!(DwtGraph::new(0, 1, WeightScheme::Equal(16)).is_err());
    }

    #[test]
    fn dwt_4_1_matches_figure_2a() {
        let g = equal16(4, 1);
        let c = g.cdag();
        assert_eq!(c.len(), 8);
        // Two independent diamond components.
        assert_eq!(c.weakly_connected_components().len(), 2);
        // v1_1 and v1_2 both feed v2_1 (average) and v2_2 (coefficient).
        let a1 = g.node(2, 1);
        let c1 = g.node(2, 2);
        assert_eq!(c.preds(a1), &[g.node(1, 1), g.node(1, 2)]);
        assert_eq!(c.preds(c1), &[g.node(1, 1), g.node(1, 2)]);
        assert_eq!(c.sinks().len(), 4); // all of S_2
        assert_eq!(c.sources().len(), 4);
    }

    #[test]
    fn dwt_4_2_matches_figure_2b() {
        let g = equal16(4, 2);
        let c = g.cdag();
        assert_eq!(c.len(), 4 + 4 + 2);
        assert_eq!(c.weakly_connected_components().len(), 1);
        // S_2 averages feed S_3; coefficients are sinks.
        let a2_1 = g.node(2, 1);
        let a2_3 = g.node(2, 3);
        let s3_1 = g.node(3, 1);
        let s3_2 = g.node(3, 2);
        assert_eq!(c.succs(a2_1), &[s3_1, s3_2]);
        assert_eq!(c.succs(a2_3), &[s3_1, s3_2]);
        assert!(c.is_sink(g.node(2, 2)));
        assert!(c.is_sink(g.node(2, 4)));
        assert!(c.is_sink(s3_1) && c.is_sink(s3_2));
    }

    #[test]
    fn dwt_8_3_matches_figure_3a() {
        let g = equal16(8, 3);
        let c = g.cdag();
        assert_eq!(c.len(), 8 + 8 + 4 + 2);
        // Layer sizes per Definition 3.1.
        let sizes: Vec<usize> = g.layers().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![8, 8, 4, 2]);
        // S_3 odd nodes j=1 (mod 4 = 1) and j=3 (mod 4 = 3) both feed S_4.
        assert_eq!(c.succs(g.node(3, 1)), &[g.node(4, 1), g.node(4, 2)]);
        assert_eq!(c.succs(g.node(3, 3)), &[g.node(4, 1), g.node(4, 2)]);
        // Sinks: coefficients of S_2 (4), S_3 (2) and all of S_4 (2).
        assert_eq!(c.sinks().len(), 4 + 2 + 2);
    }

    #[test]
    fn coordinates_round_trip() {
        let g = equal16(16, 4);
        for (li, layer) in g.layers().iter().enumerate() {
            for (ji, &v) in layer.iter().enumerate() {
                assert_eq!(g.layer_of(v), li + 1);
                assert_eq!(g.index_in_layer(v), ji + 1);
                assert_eq!(g.node(li + 1, ji + 1), v);
            }
        }
    }

    #[test]
    fn siblings_share_parents() {
        let g = equal16(16, 4);
        for v in g.cdag().nodes() {
            if let Some(u) = g.sibling(v) {
                assert!(g.is_average(v));
                assert!(g.is_coefficient(u));
                assert_eq!(g.cdag().preds(v), g.cdag().preds(u));
            }
        }
    }

    #[test]
    fn pruning_leaves_binary_forest() {
        let g = equal16(16, 2);
        let (pruned, orig_ids) = g.prune();
        // Kept: S_1 (16) + odd of S_2 (8) + odd of S_3 (4).
        assert_eq!(pruned.len(), 16 + 8 + 4);
        assert_eq!(orig_ids.len(), pruned.len());
        // Forest of n / 2^d = 4 trees.
        let comps = pruned.weakly_connected_components();
        assert_eq!(comps.len(), 4);
        for v in pruned.nodes() {
            assert!(pruned.out_degree(v) <= 1);
            assert!(pruned.in_degree(v) == 0 || pruned.in_degree(v) == 2);
        }
        assert_eq!(g.tree_roots().len(), 4);
    }

    #[test]
    fn tree_roots_are_top_layer_averages() {
        let g = equal16(256, 8);
        let roots = g.tree_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0], g.node(9, 1));
        assert_eq!(g.cdag().len(), 256 + 256 + 128 + 64 + 32 + 16 + 8 + 4 + 2);
    }

    #[test]
    fn weights_follow_scheme() {
        let g = DwtGraph::new(8, 2, WeightScheme::DoubleAccumulator(16)).unwrap();
        let c = g.cdag();
        for v in c.nodes() {
            if c.is_source(v) {
                assert_eq!(c.weight(v), 16);
            } else {
                assert_eq!(c.weight(v), 32);
            }
        }
        assert!(g.satisfies_pruning_condition());
    }

    #[test]
    fn max_level() {
        assert_eq!(DwtGraph::max_level(256), Some(8));
        assert_eq!(DwtGraph::max_level(6), Some(1));
        assert_eq!(DwtGraph::max_level(12), Some(2));
        assert_eq!(DwtGraph::max_level(7), None);
        assert_eq!(DwtGraph::max_level(0), None);
    }

    #[test]
    fn pruning_condition_fails_for_heavier_coefficients() {
        // Give coefficients *more* weight than averages via Custom is not
        // expressible (schemes are uniform over computes), so check the
        // positive case thoroughly instead.
        for scheme in WeightScheme::paper_configs() {
            let g = DwtGraph::new(32, 3, scheme).unwrap();
            assert!(g.satisfies_pruning_condition());
        }
    }
}
