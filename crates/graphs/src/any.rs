//! [`AnyGraph`] — every workload family behind one type.
//!
//! The CLI, the sweep engine and the bench binaries all need "build the
//! graph this workload names, then treat it uniformly".  Historically each
//! carried its own private enum and dispatch; this module is the single
//! shared version.  [`Workload`] is the parameter record (what to build),
//! [`AnyGraph`] the built graph (what to schedule), and both implement the
//! operations downstream layers dispatch on: [`AnyGraph::cdag`],
//! [`AnyGraph::name`], [`AnyGraph::scheme`], [`Layered`] and a stable
//! [`AnyGraph::key`] for memoization.

use crate::banded::BandedMvmGraph;
use crate::conv::ConvGraph;
use crate::dwt::DwtGraph;
use crate::dwt2d::Dwt2dGraph;
use crate::layered::{layering, Layered, LayeredCdag};
use crate::mvm::MvmGraph;
use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, NodeId};
use std::fmt;

/// Parameters naming one workload instance (build with
/// [`AnyGraph::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// `DWT(n, d)` — 1-D discrete wavelet transform.
    Dwt {
        /// Number of input samples.
        n: usize,
        /// Decomposition levels.
        d: usize,
    },
    /// `MVM(m, n)` — dense matrix-vector multiplication.
    Mvm {
        /// Matrix rows.
        m: usize,
        /// Matrix columns.
        n: usize,
    },
    /// `Conv(n, k)` — 1-D convolution / FIR filter.
    Conv {
        /// Input samples.
        n: usize,
        /// Filter taps.
        k: usize,
    },
    /// Separable 2-D DWT over an `n × n` image.
    Dwt2d {
        /// Image side length.
        n: usize,
        /// Decomposition levels.
        levels: usize,
    },
    /// Banded matrix-vector multiplication with half-bandwidth `bandwidth`.
    Banded {
        /// Matrix dimension.
        n: usize,
        /// Half-bandwidth.
        bandwidth: usize,
    },
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Workload::Dwt { n, d } => write!(f, "DWT({n}, {d})"),
            Workload::Mvm { m, n } => write!(f, "MVM({m}, {n})"),
            Workload::Conv { n, k } => write!(f, "Conv({n}, {k})"),
            Workload::Dwt2d { n, levels } => write!(f, "DWT2D({n}x{n}, {levels} levels)"),
            Workload::Banded { n, bandwidth } => write!(f, "BandedMVM({n}, {bandwidth})"),
        }
    }
}

/// Any workload graph, unified behind the operations schedulers and
/// sweeps need.
#[derive(Debug, Clone)]
pub enum AnyGraph {
    /// A 1-D DWT graph.
    Dwt(DwtGraph),
    /// A dense MVM graph.
    Mvm(MvmGraph),
    /// A 1-D convolution graph.
    Conv(ConvGraph),
    /// A separable 2-D DWT graph.
    Dwt2d(Dwt2dGraph),
    /// A banded MVM graph (layers computed on construction, since the
    /// underlying type does not carry them).
    Banded {
        /// The wrapped graph.
        graph: BandedMvmGraph,
        /// Longest-path layering of its CDAG.
        layers: Vec<Vec<NodeId>>,
    },
    /// An arbitrary CDAG under a caller-chosen name (test graphs, custom
    /// dataflows); layered by longest path.
    Custom {
        /// Display name, also part of the memo key.
        name: String,
        /// The wrapped graph plus its layering.
        graph: LayeredCdag,
    },
}

impl AnyGraph {
    /// Build the graph a [`Workload`] names under a weight scheme.
    pub fn build(w: Workload, scheme: WeightScheme) -> Result<Self, ParamError> {
        match w {
            Workload::Dwt { n, d } => DwtGraph::new(n, d, scheme).map(AnyGraph::Dwt),
            Workload::Mvm { m, n } => MvmGraph::new(m, n, scheme).map(AnyGraph::Mvm),
            Workload::Conv { n, k } => ConvGraph::new(n, k, scheme).map(AnyGraph::Conv),
            Workload::Dwt2d { n, levels } => {
                Dwt2dGraph::new(n, levels, scheme).map(AnyGraph::Dwt2d)
            }
            Workload::Banded { n, bandwidth } => {
                BandedMvmGraph::new(n, bandwidth, scheme).map(|graph| {
                    let layers = layering(graph.cdag());
                    AnyGraph::Banded { graph, layers }
                })
            }
        }
    }

    /// Wrap an arbitrary CDAG (layered by longest path) under a name.
    pub fn custom(name: impl Into<String>, cdag: Cdag) -> Self {
        AnyGraph::Custom {
            name: name.into(),
            graph: LayeredCdag::from_cdag(cdag),
        }
    }

    /// The underlying CDAG.
    pub fn cdag(&self) -> &Cdag {
        match self {
            AnyGraph::Dwt(g) => g.cdag(),
            AnyGraph::Mvm(g) => g.cdag(),
            AnyGraph::Conv(g) => g.cdag(),
            AnyGraph::Dwt2d(g) => g.cdag(),
            AnyGraph::Banded { graph, .. } => graph.cdag(),
            AnyGraph::Custom { graph, .. } => Layered::cdag(graph),
        }
    }

    /// Human-readable instance name, e.g. `DWT(256, 8)`.
    pub fn name(&self) -> String {
        match self {
            AnyGraph::Dwt(g) => format!("DWT({}, {})", g.n(), g.d()),
            AnyGraph::Mvm(g) => format!("MVM({}, {})", g.m(), g.n()),
            AnyGraph::Conv(g) => format!("Conv({}, {})", g.n(), g.k()),
            AnyGraph::Dwt2d(g) => format!("DWT2D({0}x{0}, {1} levels)", g.n(), g.levels()),
            AnyGraph::Banded { graph, .. } => {
                format!("BandedMVM({}, {})", graph.n(), graph.bandwidth())
            }
            AnyGraph::Custom { name, .. } => name.clone(),
        }
    }

    /// The weight scheme the graph was built with (`None` for custom
    /// CDAGs, whose weights are per-node).
    pub fn scheme(&self) -> Option<WeightScheme> {
        match self {
            AnyGraph::Dwt(g) => Some(g.scheme()),
            AnyGraph::Mvm(g) => Some(g.scheme()),
            AnyGraph::Conv(g) => Some(g.scheme()),
            AnyGraph::Dwt2d(g) => Some(g.scheme()),
            AnyGraph::Banded { graph, .. } => Some(graph.scheme()),
            AnyGraph::Custom { .. } => None,
        }
    }

    /// Stable identity for memo tables: name, scheme, and cheap structural
    /// invariants (so two custom graphs under one name but different
    /// shapes don't collide).
    pub fn key(&self) -> String {
        let g = self.cdag();
        format!(
            "{}|{}|{}n{}e{}w",
            self.name(),
            self.scheme()
                .map_or_else(|| "custom".into(), |s| s.label().to_string()),
            g.len(),
            g.edge_count(),
            g.total_weight(),
        )
    }
}

impl Layered for AnyGraph {
    fn cdag(&self) -> &Cdag {
        AnyGraph::cdag(self)
    }
    fn layers(&self) -> &[Vec<NodeId>] {
        match self {
            AnyGraph::Dwt(g) => g.layers(),
            AnyGraph::Mvm(g) => g.layers(),
            AnyGraph::Conv(g) => g.layers(),
            AnyGraph::Dwt2d(g) => Layered::layers(g),
            AnyGraph::Banded { layers, .. } => layers,
            AnyGraph::Custom { graph, .. } => Layered::layers(graph),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layered::check_layering;

    #[test]
    fn builds_every_family() {
        let scheme = WeightScheme::Equal(16);
        let workloads = [
            Workload::Dwt { n: 16, d: 4 },
            Workload::Mvm { m: 4, n: 5 },
            Workload::Conv { n: 12, k: 3 },
            Workload::Dwt2d { n: 8, levels: 2 },
            Workload::Banded {
                n: 12,
                bandwidth: 2,
            },
        ];
        for w in workloads {
            let g = AnyGraph::build(w, scheme).unwrap_or_else(|e| panic!("{w}: {e}"));
            assert!(!g.cdag().is_empty(), "{w}");
            assert_eq!(g.name(), w.to_string());
            assert_eq!(g.scheme(), Some(scheme));
            assert!(check_layering(&g), "{w} layering violates the contract");
        }
    }

    #[test]
    fn invalid_params_error() {
        assert!(AnyGraph::build(Workload::Dwt { n: 10, d: 4 }, WeightScheme::Equal(16)).is_err());
    }

    #[test]
    fn custom_graphs_are_layered_and_keyed() {
        let diamond = crate::testgraphs::diamond(WeightScheme::Equal(8));
        let g = AnyGraph::custom("diamond", diamond);
        assert!(check_layering(&g));
        assert_eq!(g.scheme(), None);
        assert!(g.key().starts_with("diamond|custom|"));
    }

    #[test]
    fn keys_distinguish_instances() {
        let a = AnyGraph::build(Workload::Dwt { n: 16, d: 4 }, WeightScheme::Equal(16)).unwrap();
        let b = AnyGraph::build(
            Workload::Dwt { n: 16, d: 4 },
            WeightScheme::DoubleAccumulator(16),
        )
        .unwrap();
        let c = AnyGraph::build(Workload::Dwt { n: 32, d: 4 }, WeightScheme::Equal(16)).unwrap();
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }
}
