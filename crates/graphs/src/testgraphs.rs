//! Auxiliary graph shapes: validation fodder for the schedulers/validator
//! and extension workloads beyond the paper's two benchmarks.

use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, CdagBuilder, NodeId, Weight};
use rand::Rng;

/// The two-input/one-output "add" graph used throughout unit tests.
pub fn single_add(scheme: WeightScheme) -> Cdag {
    let mut b = CdagBuilder::new();
    let x = b.node(scheme.input_weight(), "x");
    let y = b.node(scheme.input_weight(), "y");
    let s = b.node(scheme.compute_weight(), "x+y");
    b.edge(x, s);
    b.edge(y, s);
    b.build().expect("single add is structurally valid")
}

/// A diamond with shared input:
/// `a, b → c`;  `b → d`;  `c, d → e` — the smallest graph with data reuse
/// (node `b` has out-degree 2).
pub fn diamond(scheme: WeightScheme) -> Cdag {
    let mut b = CdagBuilder::new();
    let a = b.node(scheme.input_weight(), "a");
    let bb = b.node(scheme.input_weight(), "b");
    let c = b.node(scheme.compute_weight(), "c");
    let d = b.node(scheme.compute_weight(), "d");
    let e = b.node(scheme.compute_weight(), "e");
    b.edge(a, c);
    b.edge(bb, c);
    b.edge(bb, d);
    b.edge(c, e);
    b.edge(d, e);
    b.build().expect("diamond is structurally valid")
}

/// A radix-2 FFT butterfly network on `n = 2^stages` points — the paper
/// motivates DWT as representative of FFT-like recursive dataflows; this
/// graph lets the generic schedulers be exercised on the real thing.
///
/// Every node of stage `s` has two parents from stage `s-1` (the classic
/// Cooley–Tukey wiring), and out-degree 2 except in the last stage.
pub fn fft_butterfly(stages: usize, scheme: WeightScheme) -> Result<Cdag, ParamError> {
    if !(1..=20).contains(&stages) {
        return Err(ParamError(format!(
            "fft butterfly needs 1 <= stages <= 20 (got {stages})"
        )));
    }
    let n = 1usize << stages;
    let mut b = CdagBuilder::new();
    let mut prev: Vec<NodeId> = (0..n)
        .map(|i| b.node(scheme.input_weight(), format!("x{i}")))
        .collect();
    for s in 0..stages {
        let half = 1usize << s;
        let cur: Vec<NodeId> = (0..n)
            .map(|i| b.node(scheme.compute_weight(), format!("f{}_{}", s + 1, i)))
            .collect();
        for (i, &v) in cur.iter().enumerate() {
            let partner = i ^ half;
            b.edge(prev[i], v);
            b.edge(prev[partner], v);
        }
        prev = cur;
    }
    b.build()
        .map_err(|e| ParamError(format!("internal FFT construction error: {e}")))
}

/// A random layered DAG: `layers` layers of `width` nodes; each non-input
/// node draws 1–2 parents from the previous layer.  Always yields a valid
/// CDAG (connected enough that no node is isolated).
pub fn random_layered_dag<R: Rng>(
    layers: usize,
    width: usize,
    w_range: std::ops::RangeInclusive<Weight>,
    rng: &mut R,
) -> Result<Cdag, ParamError> {
    if layers < 2 || width < 1 {
        return Err(ParamError(format!(
            "random layered DAG needs layers >= 2, width >= 1 (got {layers}, {width})"
        )));
    }
    let mut b = CdagBuilder::new();
    let mut prev: Vec<NodeId> = (0..width)
        .map(|i| b.node(rng.gen_range(w_range.clone()), format!("in{i}")))
        .collect();
    for l in 1..layers {
        let cur: Vec<NodeId> = (0..width)
            .map(|i| b.node(rng.gen_range(w_range.clone()), format!("v{l}_{i}")))
            .collect();
        // Every current node draws 1–2 distinct parents from the previous
        // layer; then any previous-layer node left unused is attached to a
        // random current node so no input ends up isolated.
        let mut parents: Vec<Vec<NodeId>> = vec![Vec::new(); cur.len()];
        for (i, _) in cur.iter().enumerate() {
            let p1 = prev[rng.gen_range(0..prev.len())];
            parents[i].push(p1);
            if prev.len() > 1 && rng.gen_bool(0.5) {
                let mut p2 = prev[rng.gen_range(0..prev.len())];
                while p2 == p1 {
                    p2 = prev[rng.gen_range(0..prev.len())];
                }
                parents[i].push(p2);
            }
        }
        for &p in &prev {
            if !parents.iter().any(|ps| ps.contains(&p)) {
                let i = rng.gen_range(0..cur.len());
                parents[i].push(p);
            }
        }
        for (i, &v) in cur.iter().enumerate() {
            for &p in &parents[i] {
                b.edge(p, v);
            }
        }
        prev = cur;
    }
    b.build()
        .map_err(|e| ParamError(format!("random layered DAG construction failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_add_and_diamond() {
        let g = single_add(WeightScheme::Equal(16));
        assert_eq!(g.len(), 3);
        let d = diamond(WeightScheme::DoubleAccumulator(16));
        assert_eq!(d.len(), 5);
        assert_eq!(d.out_degree(NodeId(1)), 2);
        assert_eq!(d.sinks().len(), 1);
    }

    #[test]
    fn fft_structure() {
        let g = fft_butterfly(3, WeightScheme::Equal(16)).unwrap();
        // 8 inputs + 3 stages of 8.
        assert_eq!(g.len(), 8 * 4);
        assert_eq!(g.sources().len(), 8);
        assert_eq!(g.sinks().len(), 8);
        for v in g.nodes() {
            if !g.is_source(v) {
                assert_eq!(g.in_degree(v), 2);
            }
        }
        assert!(fft_butterfly(0, WeightScheme::Equal(1)).is_err());
    }

    #[test]
    fn random_layered_dags_build() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let g = random_layered_dag(4, 5, 1..=8, &mut rng).unwrap();
            assert_eq!(g.len(), 20);
            assert!(g.edge_count() >= 15);
            assert_eq!(g.sources().len(), 5);
        }
    }
}
