//! Coarse-grained DWT graphs — the operation-granularity axis the paper
//! leaves open.
//!
//! §3.1.1 notes that "coarser or finer operation granularities are possible
//! and functionally equivalent.  We opt for finer granularities given our
//! extreme resource constraints."  This module builds the *coarse*
//! alternative so the claim can be quantified: one **butterfly** node per
//! (average, coefficient) pair, holding both results (twice the compute
//! weight), plus one extraction sink per coefficient (the data that must
//! reach slow memory) and one for the final average.
//!
//! Comparing the fine graph's optimal schedules against the coarse graph's
//! (see the `granularity` ablation) shows why the paper chooses fine
//! granularity: a butterfly pins `2·w` of fast memory even when only its
//! average half is still needed, inflating the minimum memory.

use crate::weights::WeightScheme;
use crate::ParamError;
use pebblyn_core::{Cdag, CdagBuilder, NodeId};

/// A coarse-grained `DWT(n, d)` graph.
#[derive(Debug, Clone)]
pub struct CoarseDwtGraph {
    cdag: Cdag,
    n: usize,
    d: usize,
    scheme: WeightScheme,
    /// `butterflies[k-1][t-1]` = butterfly `t` of level `k`.
    butterflies: Vec<Vec<NodeId>>,
    /// Coefficient-extraction sinks, same indexing as `butterflies`.
    coeff_outs: Vec<Vec<NodeId>>,
    /// Final-average extraction sinks, one per level-`d` butterfly.
    avg_outs: Vec<NodeId>,
    layers: Vec<Vec<NodeId>>,
}

impl CoarseDwtGraph {
    /// Build the coarse `DWT(n, d)`; same parameter constraints as the
    /// fine-grained [`crate::DwtGraph`].
    pub fn new(n: usize, d: usize, scheme: WeightScheme) -> Result<Self, ParamError> {
        if d < 1 {
            return Err(ParamError(format!("coarse DWT level d={d} must be >= 1")));
        }
        if d >= usize::BITS as usize || n == 0 || !n.is_multiple_of(1usize << d) {
            return Err(ParamError(format!(
                "coarse DWT inputs n={n} must be a positive multiple of 2^{d}"
            )));
        }
        let w_in = scheme.input_weight();
        let w_c = scheme.compute_weight();
        let mut b = CdagBuilder::new();
        let inputs: Vec<NodeId> = (1..=n).map(|j| b.node(w_in, format!("x{j}"))).collect();

        let mut butterflies: Vec<Vec<NodeId>> = Vec::with_capacity(d);
        let mut coeff_outs: Vec<Vec<NodeId>> = Vec::with_capacity(d);
        let mut layers: Vec<Vec<NodeId>> = vec![inputs.clone()];
        let mut prev: Vec<NodeId> = inputs;
        for k in 1..=d {
            let count = prev.len() / 2;
            let mut level = Vec::with_capacity(count);
            let mut outs = Vec::with_capacity(count);
            for t in 0..count {
                // The butterfly holds the (average, coefficient) pair.
                let bf = b.node(2 * w_c, format!("bf{k}_{}", t + 1));
                b.edge(prev[2 * t], bf);
                b.edge(prev[2 * t + 1], bf);
                // The coefficient half must reach slow memory.
                let co = b.node(w_c, format!("c{k}_{}", t + 1));
                b.edge(bf, co);
                level.push(bf);
                outs.push(co);
            }
            // Layer k holds level-k butterflies plus the previous level's
            // coefficient extractions (whose parents are in layer k − 1).
            let mut layer = level.clone();
            if k >= 2 {
                layer.extend(coeff_outs[k - 2].iter().copied());
            }
            layers.push(layer);
            butterflies.push(level.clone());
            coeff_outs.push(outs);
            prev = level;
        }
        // The deepest averages are outputs too; the last layer also takes
        // the deepest coefficients.
        let avg_outs: Vec<NodeId> = prev
            .iter()
            .enumerate()
            .map(|(t, &bf)| {
                let ao = b.node(w_c, format!("a{d}_{}", t + 1));
                b.edge(bf, ao);
                ao
            })
            .collect();
        layers.push(
            coeff_outs[d - 1]
                .iter()
                .copied()
                .chain(avg_outs.iter().copied())
                .collect(),
        );

        let cdag = b
            .build()
            .map_err(|e| ParamError(format!("internal coarse DWT error: {e}")))?;
        Ok(CoarseDwtGraph {
            cdag,
            n,
            d,
            scheme,
            butterflies,
            coeff_outs,
            avg_outs,
            layers,
        })
    }

    /// The underlying CDAG.
    #[inline]
    pub fn cdag(&self) -> &Cdag {
        &self.cdag
    }

    /// Input count.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Level count.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// The weight scheme.
    #[inline]
    pub fn scheme(&self) -> WeightScheme {
        self.scheme
    }

    /// Butterfly `t` of level `k` (both 1-based).
    pub fn butterfly(&self, k: usize, t: usize) -> NodeId {
        self.butterflies[k - 1][t - 1]
    }

    /// Coefficient output `t` of level `k` (both 1-based).
    pub fn coeff_out(&self, k: usize, t: usize) -> NodeId {
        self.coeff_outs[k - 1][t - 1]
    }

    /// Final-average outputs.
    pub fn avg_outs(&self) -> &[NodeId] {
        &self.avg_outs
    }
}

impl crate::layered::Layered for CoarseDwtGraph {
    fn cdag(&self) -> &Cdag {
        CoarseDwtGraph::cdag(self)
    }
    fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layered::check_layering;

    #[test]
    fn structure_of_coarse_8_3() {
        let g = CoarseDwtGraph::new(8, 3, WeightScheme::Equal(16)).unwrap();
        let c = g.cdag();
        // 8 inputs + butterflies 4+2+1 + coeff outs 4+2+1 + 1 avg out.
        assert_eq!(c.len(), 8 + 7 + 7 + 1);
        // Butterflies weigh two words.
        assert_eq!(c.weight(g.butterfly(1, 1)), 32);
        assert_eq!(c.weight(g.coeff_out(2, 1)), 16);
        // Sinks: all coefficient outs + the final average out.
        assert_eq!(c.sinks().len(), 8);
        // Level-2 butterfly 1 consumes level-1 butterflies 1 and 2.
        assert_eq!(
            c.preds(g.butterfly(2, 1)),
            &[g.butterfly(1, 1), g.butterfly(1, 2)]
        );
        assert!(check_layering(&g));
    }

    #[test]
    fn rejects_bad_params() {
        assert!(CoarseDwtGraph::new(6, 2, WeightScheme::Equal(16)).is_err());
        assert!(CoarseDwtGraph::new(8, 0, WeightScheme::Equal(16)).is_err());
    }

    #[test]
    fn lower_bound_matches_fine_grained() {
        // Same inputs, same output data => same algorithmic lower bound.
        for scheme in WeightScheme::paper_configs() {
            let fine = crate::DwtGraph::new(16, 4, scheme).unwrap();
            let coarse = CoarseDwtGraph::new(16, 4, scheme).unwrap();
            assert_eq!(
                pebblyn_core::algorithmic_lower_bound(fine.cdag()),
                pebblyn_core::algorithmic_lower_bound(coarse.cdag()),
            );
        }
    }

    #[test]
    fn coarse_needs_more_feasible_budget() {
        // Computing a butterfly requires the pair plus both parent pairs:
        // strictly more than the fine graph's worst-case operand set.
        let scheme = WeightScheme::Equal(16);
        let fine = crate::DwtGraph::new(16, 4, scheme).unwrap();
        let coarse = CoarseDwtGraph::new(16, 4, scheme).unwrap();
        assert!(
            pebblyn_core::min_feasible_budget(coarse.cdag())
                > pebblyn_core::min_feasible_budget(fine.cdag())
        );
    }
}
