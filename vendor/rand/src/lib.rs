//! Offline stand-in for the `rand` 0.8 API surface pebblyn uses.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `rand` to this crate (see `[patch.crates-io]` in the workspace manifest).
//! Only the pieces the repo actually calls are provided: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits and uniform range sampling via
//! [`Rng::gen_range`] / [`Rng::gen_bool`].  Statistical quality matches a
//! 64-bit SplitMix-style generator — plenty for randomized tests and graph
//! generators, not for cryptography.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by multiply-shift reduction (no modulo
/// bias worth caring about at 64→width bits for test workloads).
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The SplitMix64 step, shared with `rand_chacha`'s stand-in generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Sm(1);
        for _ in 0..1000 {
            let a = rng.gen_range(0usize..11);
            assert!(a < 11);
            let b = rng.gen_range(1u64..=9);
            assert!((1..=9).contains(&b));
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let f = rng.gen_range(-100.0f64..100.0);
            assert!((-100.0..100.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (mut a, mut b) = (Sm(7), Sm(7));
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
