//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / `prop_assume`
//! macros, [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`prop_oneof!`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its case number and message;
//!   inputs are reproducible because the RNG seed is derived from the test
//!   name and case index.
//! * **No persistence files**, no forked execution, no timeouts.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What a property body evaluates to internally (`Ok` = case passed).
pub type TestCaseResult = Result<(), String>;

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` times with freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __pt_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);)+
                let __pt_result: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = __pt_result {
                    panic!(
                        "property {} failed at case {case}/{}: {msg}",
                        stringify!($name),
                        cfg.cases,
                    );
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?} ({} vs {})",
                l, r, stringify!($left), stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne failed: both {:?} ({} vs {})",
                l,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Skip the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_work(
            x in 1u64..=16,
            v in crate::collection::vec(0usize..10, 0..4),
            f in -1.0f64..1.0,
        ) {
            prop_assert!((1..=16).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_and_map_work(y in prop_oneof![
            (1u64..=4).prop_map(|v| v * 10),
            (5u64..=8).prop_map(|v| v * 100),
        ]) {
            prop_assert!((10..=40).contains(&y) || (500..=800).contains(&y), "y={y}");
        }
    }

    proptest! {
        fn always_fails(x in 0u8..1) {
            prop_assert!(x > 200);
        }
    }

    #[test]
    #[should_panic(expected = "prop_assert failed")]
    fn failures_panic() {
        always_fails();
    }
}
