//! Configuration and the deterministic per-case RNG.

/// Run configuration (only `cases` is meaningful in this stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure of one property case (stand-in: carries only the message).
///
/// Converts into the `String` the stub's case bodies use as their error
/// type, so `result.map_err(|e| TestCaseError::fail(...))?` works as it
/// does under real proptest.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// A rejected case (the stub treats rejects as failures).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<TestCaseError> for String {
    fn from(e: TestCaseError) -> String {
        e.0
    }
}

/// Deterministic RNG: the stream is a function of (test name, case index),
/// so failures are reproducible run-to-run without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut state = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let _ = Self::mix(&mut state);
        TestRng { state }
    }

    #[inline]
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        Self::mix(&mut self.state)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}
