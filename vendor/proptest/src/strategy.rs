//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// Something that can draw a value from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous collections ([`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
