//! Offline stand-in for `criterion`.
//!
//! Provides the API subset pebblyn's benches use — `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` /
//! `measurement_time` / `throughput`, `bench_function` /
//! `bench_with_input`, and `Bencher::iter` — measured with plain
//! `std::time::Instant`.  No statistics, plots, or baselines: each
//! benchmark reports its mean wall time per iteration to stdout, which is
//! enough to compare hot paths in an offline container.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Honours `cargo bench -- --test` like the real crate: in test mode
    /// every benchmark runs exactly once, so CI can smoke-check that all
    /// bench targets still execute without paying for a measurement run.
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            sample_size: if test_mode { 1 } else { 10 },
            measurement_time: Duration::from_secs(2),
            test_mode,
        }
    }
}

/// Throughput annotation (accepted, reported per element/byte).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Iterations to average over (also bounded by `measurement_time`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !self.test_mode {
            self.measurement_time = d;
        }
        self
    }

    /// Record throughput (accepted for API compatibility; printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            budget: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        b.report(&id.id);
        self
    }

    /// Benchmark a closure against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            budget: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&id.id);
        self
    }

    /// End the group (printing already happened incrementally).
    pub fn finish(&mut self) {}
}

/// Timing harness passed to bench closures.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, averaging up to `sample_size` runs within the
    /// measurement budget (always at least one run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            hint::black_box(routine());
            total += t0.elapsed();
            iters += 1;
            if started.elapsed() > self.budget {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<40} (no measurement)");
        } else if self.mean_ns >= 1e6 {
            println!(
                "{id:<40} {:>12.3} ms/iter ({} iters)",
                self.mean_ns / 1e6,
                self.iters
            );
        } else {
            println!(
                "{id:<40} {:>12.0} ns/iter ({} iters)",
                self.mean_ns, self.iters
            );
        }
    }
}

/// Bundle bench target functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point calling each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                black_box(x * x)
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
