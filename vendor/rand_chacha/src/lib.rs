//! Offline stand-in for `rand_chacha`.
//!
//! Exposes a [`ChaCha8Rng`] type with the two entry points the repo uses
//! (`SeedableRng::seed_from_u64` + `RngCore`).  The stream is a SplitMix64
//! sequence, not real ChaCha — every consumer in this workspace only needs
//! a deterministic, seedable, well-mixed source for tests and generators.

use rand::{splitmix64, RngCore, SeedableRng};

/// Deterministic seedable generator (SplitMix64 under the familiar name).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: u64,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix so nearby seeds diverge immediately.
        let mut s = state ^ 0xA076_1D64_78BD_642F;
        let _ = splitmix64(&mut s);
        ChaCha8Rng { state: s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_give_distinct_reproducible_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let mut a2 = ChaCha8Rng::seed_from_u64(1);
        let (x, y, x2) = (a.next_u64(), b.next_u64(), a2.next_u64());
        assert_eq!(x, x2);
        assert_ne!(x, y);
    }
}
