//! Property-based tests over randomly generated workloads: the invariants
//! every scheduler must uphold regardless of shape, weights, or budget.

use pebblyn::conformance::metamorphic::scale_weights;
use pebblyn::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Multiply every node weight produced by a scheme by `s`.  All three
/// variants assign weights linearly in their parameters, so scaling the
/// parameters scales the whole graph uniformly.
fn scale_scheme(scheme: WeightScheme, s: Weight) -> WeightScheme {
    match scheme {
        WeightScheme::Equal(w) => WeightScheme::Equal(s * w),
        WeightScheme::DoubleAccumulator(w) => WeightScheme::DoubleAccumulator(s * w),
        WeightScheme::Custom { input, compute } => WeightScheme::Custom {
            input: s * input,
            compute: s * compute,
        },
    }
}

fn arb_scheme() -> impl Strategy<Value = WeightScheme> {
    prop_oneof![
        (1u64..=32).prop_map(WeightScheme::Equal),
        (1u64..=16).prop_map(WeightScheme::DoubleAccumulator),
        (1u64..=16, 1u64..=32).prop_map(|(i, c)| WeightScheme::Custom {
            input: i,
            compute: c
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The k-ary DP emits valid schedules whose replayed cost equals the
    /// DP's claim, sits at or above the lower bound, and is monotone in
    /// budget — on arbitrary random weighted trees.
    #[test]
    fn kary_invariants(seed in 0u64..5000, internal in 1usize..7, kmax in 1usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = tree::random_weighted_tree(internal, kmax, 1..=9, &mut rng).unwrap();
        let lb = algorithmic_lower_bound(&t);
        let minb = min_feasible_budget(&t);
        let mut prev: Option<Weight> = None;
        let mut b = minb;
        let step = t.weight_gcd().max(1);
        while b <= t.total_weight() {
            let cost = kary::min_cost(&t, b);
            let sched = kary::schedule(&t, b);
            prop_assert_eq!(cost.is_some(), sched.is_some());
            if let (Some(c), Some(s)) = (cost, sched) {
                let stats = validate_schedule(&t, b, &s).expect("valid schedule");
                prop_assert_eq!(stats.cost, c);
                prop_assert!(c >= lb);
                prop_assert!(stats.peak_red_weight <= b);
                if let Some(p) = prev {
                    prop_assert!(c <= p);
                }
                prev = Some(c);
            }
            b += step;
        }
        // Ample budget reaches the lower bound on trees.
        prop_assert_eq!(kary::min_cost(&t, t.total_weight()), Some(lb));
    }

    /// DWT invariants across random (n, d, scheme) combinations, including
    /// equality between cost-only and schedule-emitting paths.
    #[test]
    fn dwt_invariants(k in 1usize..5, d in 1usize..5, scheme in arb_scheme()) {
        let n = k << d;
        let dwt = DwtGraph::new(n, d, scheme).unwrap();
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        let minb = min_feasible_budget(g);
        for b in [minb, minb + g.weight_gcd(), g.total_weight() / 2, g.total_weight()] {
            if b < minb { continue; }
            let cost = dwt_opt::min_cost(&dwt, b);
            if let Some(c) = cost {
                let s = dwt_opt::schedule(&dwt, b).expect("schedule when cost exists");
                let stats = validate_schedule(g, b, &s).expect("valid");
                prop_assert_eq!(stats.cost, c);
                prop_assert!(c >= lb);
            }
        }
        prop_assert_eq!(dwt_opt::min_cost(&dwt, g.total_weight()), Some(lb));
    }

    /// The naive existence-witness schedule is valid exactly when
    /// Proposition 2.3 says a schedule exists.
    #[test]
    fn naive_matches_existence(seed in 0u64..5000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = pebblyn::graphs::testgraphs::random_layered_dag(3, 4, 1..=8, &mut rng).unwrap();
        let minb = min_feasible_budget(&g);
        prop_assert!(schedule_exists(&g, minb));
        prop_assert!(!schedule_exists(&g, minb - 1));
        let s = naive::schedule(&g, minb).expect("witness at min feasible");
        let stats = validate_schedule(&g, minb, &s).expect("valid witness");
        prop_assert_eq!(stats.cost, naive::cost(&g));
        prop_assert!(naive::schedule(&g, minb - 1).is_none());
    }

    /// Layer-by-layer emits valid schedules whenever it emits at all, on
    /// random DWT shapes and budgets.
    #[test]
    fn layer_by_layer_validity(k in 1usize..4, d in 1usize..5, extra in 0u64..64) {
        let n = k << d;
        let dwt = DwtGraph::new(n, d, WeightScheme::Equal(4)).unwrap();
        let g = dwt.cdag();
        let b = min_feasible_budget(g) + extra * g.weight_gcd();
        if let Some(s) = layer_by_layer::schedule(&dwt, b, LayerByLayerOptions::default()) {
            let stats = validate_schedule(g, b, &s).expect("valid");
            prop_assert!(stats.cost >= algorithmic_lower_bound(g));
        }
    }

    /// MVM tiling: every config in range produces a schedule whose
    /// validator-measured peak and cost equal the analytic formulas.
    #[test]
    fn tiling_formulas_exact(m in 2usize..7, n in 1usize..7, scheme in arb_scheme()) {
        let mvm = MvmGraph::new(m, n, scheme).unwrap();
        for h in 1..=m {
            for vr in [0, n / 2, n] {
                let cfg = TilingConfig::new(h, vr, n);
                let s = mvm_tiling::schedule_with_config(&mvm, &cfg);
                let peak = mvm_tiling::config_peak(&mvm, &cfg);
                let stats = validate_schedule(mvm.cdag(), peak, &s).expect("valid at peak");
                prop_assert_eq!(stats.peak_red_weight, peak);
                prop_assert_eq!(stats.cost, mvm_tiling::config_cost(&mvm, &cfg));
            }
        }
    }

    /// The machine and the validator agree on every measurable of a
    /// schedule (cost, peak) for random DWT workloads.
    #[test]
    fn machine_and_validator_agree(seed in 0u64..1000, d in 1usize..5) {
        let n = 1usize << d;
        let dwt = DwtGraph::new(n, d, WeightScheme::Equal(16)).unwrap();
        let g = dwt.cdag();
        let b = min_feasible_budget(g) + 32;
        let s = dwt_opt::schedule(&dwt, b).expect("feasible");
        let stats = validate_schedule(g, b, &s).expect("valid");

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let signal: Vec<f64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0)).collect();
        let ops = haar::op_table(&dwt);
        let env = haar::inputs_for(&dwt, &signal);
        let report = Machine::new(g, &ops, b).run(&s, &env).expect("executes");
        prop_assert_eq!(report.io_bits, stats.cost);
        prop_assert_eq!(report.peak_fast_bits, stats.peak_red_weight);
    }

    /// The memory-state planner (Eq. 8 with emission) always matches the
    /// cost-only DP and replays to the same cost under the context
    /// semantics — on random binary trees with random initial/reuse sets.
    #[test]
    fn memstate_planner_matches_cost_dp(seed in 0u64..3000, internal in 1usize..6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Binary trees only (the planner covers k = 2).
        let t = tree::random_weighted_tree(internal, 2, 1..=6, &mut rng).unwrap();
        prop_assume!(t.max_in_degree() <= 2);
        // Random states: each leaf flips into I and/or R with p = 1/3.
        let leaves = t.sources();
        let mut initial = Vec::new();
        let mut reuse = Vec::new();
        for &l in leaves {
            if rand::Rng::gen_bool(&mut rng, 1.0 / 3.0) { initial.push(l); }
            if rand::Rng::gen_bool(&mut rng, 1.0 / 3.0) { reuse.push(l); }
        }
        let states = MemoryStates::new(initial, reuse);
        let minb = min_feasible_budget(&t);
        for b in [minb, minb + 3, minb + 9, t.total_weight() + 8] {
            let cost = memstate::min_cost(&t, b, &states);
            let ctx = memstate::plan(&t, b, &states);
            prop_assert_eq!(cost, ctx.as_ref().map(|c| c.cost), "budget {}", b);
            if let Some(ctx) = ctx {
                let replayed = memstate::validate_in_context(&t, b, &states, &ctx)
                    .map_err(|e| TestCaseError::fail(format!("b={b}: {e}")))?;
                prop_assert_eq!(replayed, ctx.cost);
            }
        }
    }

    /// Exact solver sanity on random tiny trees: never beaten by, and never
    /// beats, the k-ary DP (i.e. they agree).
    #[test]
    fn exact_agrees_with_kary_on_tiny_trees(seed in 0u64..300) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = tree::random_weighted_tree(2, 2, 1..=3, &mut rng).unwrap();
        prop_assume!(t.len() <= 7);
        let minb = min_feasible_budget(&t);
        for b in [minb, minb + 1, minb + 3, t.total_weight()] {
            prop_assert_eq!(kary::min_cost(&t, b), exact_min_cost(&t, b));
        }
    }

    /// CSR construction round-trips the builder: for random DAG edge lists,
    /// the flat adjacency agrees with a naive `Vec<Vec<NodeId>>` layout
    /// built from the same edges — per-node neighbor order included — and
    /// the cached sources/sinks/edge-count/topo/ancestors match what the
    /// naive layout derives.
    #[test]
    fn csr_round_trips_builder(seed in 0u64..5000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = rand::Rng::gen_range(&mut rng, 2usize..=24);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // Every non-root node gets >= 1 predecessor so nothing is isolated.
        for j in 1..n {
            let i = rand::Rng::gen_range(&mut rng, 0..j);
            if seen.insert((i, j)) { edges.push((i, j)); }
            for _ in 0..rand::Rng::gen_range(&mut rng, 0usize..3) {
                let i = rand::Rng::gen_range(&mut rng, 0..j);
                if seen.insert((i, j)) { edges.push((i, j)); }
            }
        }

        let mut b = CdagBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.node(rand::Rng::gen_range(&mut rng, 1u64..=9), format!("v{i}")))
            .collect();
        for &(x, y) in &edges {
            b.edge(ids[x], ids[y]);
        }
        // Every node with index >= 1 has a predecessor and node 0 has a
        // successor, so the builder's isolated-node check cannot fire.
        let g = b.build().expect("random DAG builds");

        // Naive adjacency in edge-insertion order — the pre-CSR layout.
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(x, y) in &edges {
            preds[y].push(ids[x]);
            succs[x].push(ids[y]);
        }

        prop_assert_eq!(g.edge_count(), edges.len());
        for v in g.nodes() {
            let i = v.index();
            prop_assert_eq!(g.preds(v), &preds[i][..]);
            prop_assert_eq!(g.succs(v), &succs[i][..]);
            prop_assert_eq!(g.in_degree(v), preds[i].len());
            prop_assert_eq!(g.out_degree(v), succs[i].len());
        }
        let naive_sources: Vec<NodeId> =
            g.nodes().filter(|v| preds[v.index()].is_empty()).collect();
        let naive_sinks: Vec<NodeId> =
            g.nodes().filter(|v| succs[v.index()].is_empty()).collect();
        prop_assert_eq!(g.sources(), &naive_sources[..]);
        prop_assert_eq!(g.sinks(), &naive_sinks[..]);

        // topo_order is a permutation where every edge goes forward.
        let topo = g.topo_order();
        prop_assert_eq!(topo.len(), n);
        let mut pos = vec![usize::MAX; n];
        for (idx, &v) in topo.iter().enumerate() {
            pos[v.index()] = idx;
        }
        for &(x, y) in &edges {
            prop_assert!(pos[x] < pos[y], "edge ({x}, {y}) violates topo order");
        }

        // ancestors() agrees with naive reachability over the naive layout.
        for v in g.nodes() {
            let anc = g.ancestors(v);
            let mut naive = vec![false; n];
            let mut stack = vec![v];
            while let Some(u) = stack.pop() {
                for &p in &preds[u.index()] {
                    if !naive[p.index()] {
                        naive[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            prop_assert_eq!(anc, naive);
        }
    }

    /// A schedule replayed through the struct-of-arrays `MoveStream` path
    /// is indistinguishable from its `Vec<Move>` form: identical move
    /// round-trip, identical cost, and the identical validation verdict —
    /// for valid schedules and corrupted ones alike.
    #[test]
    fn move_stream_replay_is_identical(seed in 0u64..2000, cut in 0usize..40) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = pebblyn::graphs::testgraphs::random_layered_dag(3, 4, 1..=8, &mut rng).unwrap();
        let b = min_feasible_budget(&g);
        let s = naive::schedule(&g, b).expect("witness at min feasible");
        let moves: Vec<Move> = s.moves();

        // Round-trip through the stream.
        let rebuilt = Schedule::from_moves(moves.clone());
        prop_assert_eq!(&rebuilt, &s);
        prop_assert_eq!(rebuilt.stream().iter().collect::<Vec<_>>(), moves.clone());
        for (i, &mv) in moves.iter().enumerate() {
            prop_assert_eq!(rebuilt.stream().get(i), mv);
        }

        // Identical verdict and stats via both entry points.
        let via_schedule = validate_schedule(&g, b, &s);
        let via_stream = validate_moves(&g, b, moves.iter().copied());
        prop_assert_eq!(via_schedule.clone(), via_stream);
        let stats = via_schedule.expect("witness schedule is valid");
        prop_assert_eq!(stats.cost, s.cost(&g));

        // Corrupt the schedule (truncate at a random point): both paths
        // must agree on the failure, too.
        let cut = cut % (moves.len() + 1);
        let truncated: Vec<Move> = moves[..cut].to_vec();
        let ts = Schedule::from_moves(truncated.clone());
        prop_assert_eq!(
            validate_schedule(&g, b, &ts),
            validate_moves(&g, b, truncated.iter().copied())
        );
    }

    /// Budget monotonicity for the DWT DP: more fast memory never costs
    /// more I/O, at budget probes spread across the whole feasible range
    /// (not just lattice points), and the ample-budget end touches the
    /// lower bound.
    #[test]
    fn dwt_budget_monotonicity(k in 1usize..5, d in 1usize..5, scheme in arb_scheme()) {
        let n = k << d;
        let dwt = DwtGraph::new(n, d, scheme).unwrap();
        let g = dwt.cdag();
        let minb = min_feasible_budget(g);
        let total = g.total_weight();
        let mut prev: Option<Weight> = None;
        let mut samples = 0usize;
        for i in 0..=16u64 {
            let b = minb + (total - minb) * i / 16;
            if let Some(c) = dwt_opt::min_cost(&dwt, b) {
                if let Some(p) = prev {
                    prop_assert!(c <= p, "cost rose {} -> {} at budget {}", p, c, b);
                }
                prev = Some(c);
                samples += 1;
            }
        }
        prop_assert!(samples >= 2, "monotonicity probe vacuous: {samples} feasible budgets");
        prop_assert_eq!(prev, Some(algorithmic_lower_bound(g)));
    }

    /// Budget monotonicity for the memory-state DP, with random
    /// initial/reuse leaf sets in play: more fast memory never costs more,
    /// and feasibility is upward-closed over the probed budgets.
    #[test]
    fn memstate_budget_monotonicity(seed in 0u64..3000, internal in 1usize..6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = tree::random_weighted_tree(internal, 2, 1..=6, &mut rng).unwrap();
        prop_assume!(t.max_in_degree() <= 2);
        let leaves = t.sources();
        let mut initial = Vec::new();
        let mut reuse = Vec::new();
        for &l in leaves {
            if rand::Rng::gen_bool(&mut rng, 1.0 / 3.0) { initial.push(l); }
            if rand::Rng::gen_bool(&mut rng, 1.0 / 3.0) { reuse.push(l); }
        }
        let states = MemoryStates::new(initial, reuse);
        let minb = min_feasible_budget(&t);
        let top = t.total_weight() + 8;
        let mut prev: Option<Weight> = None;
        for i in 0..=12u64 {
            let b = minb + (top - minb) * i / 12;
            match memstate::min_cost(&t, b, &states) {
                Some(c) => {
                    if let Some(p) = prev {
                        prop_assert!(c <= p, "cost rose {} -> {} at budget {}", p, c, b);
                    }
                    prev = Some(c);
                }
                None => prop_assert!(
                    prev.is_none(),
                    "feasibility not upward-closed: infeasible at {} after a feasible budget", b
                ),
            }
        }
        prop_assert!(prev.is_some(), "ample budget {} still infeasible", top);
    }

    /// Weight scaling is a symmetry of the k-ary DP: multiplying every
    /// node weight by `s` multiplies the DP's cost at budget `s * b` by
    /// exactly `s` — the recurrence is weight-linear, so the claim holds
    /// for the DP value even on trees where the DP is not globally optimal.
    #[test]
    fn kary_cost_scales_with_weights(
        seed in 0u64..3000, internal in 1usize..6, kmax in 1usize..4, s in 2u64..6
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = tree::random_weighted_tree(internal, kmax, 1..=9, &mut rng).unwrap();
        let scaled = scale_weights(&t, s);
        let minb = min_feasible_budget(&t);
        prop_assert_eq!(min_feasible_budget(&scaled), s * minb);
        for b in [minb, minb + 1, minb + t.weight_gcd(), (minb + t.total_weight()) / 2, t.total_weight()] {
            prop_assert_eq!(
                kary::min_cost(&scaled, s * b),
                kary::min_cost(&t, b).map(|c| s * c),
                "budget {}", b
            );
        }
    }

    /// Weight scaling is a symmetry of the DWT DP, across every weight
    /// scheme: `min_cost` on the `s`-scaled scheme at budget `s * b` is
    /// exactly `s` times `min_cost` on the original at `b` — including
    /// agreement on infeasibility.
    #[test]
    fn dwt_cost_scales_with_weights(
        k in 1usize..5, d in 1usize..5, scheme in arb_scheme(), s in 2u64..5
    ) {
        let n = k << d;
        let dwt = DwtGraph::new(n, d, scheme).unwrap();
        let scaled = DwtGraph::new(n, d, scale_scheme(scheme, s)).unwrap();
        let g = dwt.cdag();
        let minb = min_feasible_budget(g);
        prop_assert_eq!(min_feasible_budget(scaled.cdag()), s * minb);
        let total = g.total_weight();
        for b in [minb.saturating_sub(1), minb, minb + g.weight_gcd(), (minb + total) / 2, total] {
            prop_assert_eq!(
                dwt_opt::min_cost(&scaled, s * b),
                dwt_opt::min_cost(&dwt, b).map(|c| s * c),
                "budget {}", b
            );
        }
    }

    /// Weight scaling is a symmetry of the memory-state DP even with
    /// nonempty initial/reuse sets: the state semantics are structural
    /// (which leaves are resident / rematerializable), so scaling weights
    /// and budget together scales the cost exactly.
    #[test]
    fn memstate_cost_scales_with_weights(seed in 0u64..3000, internal in 1usize..6, s in 2u64..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = tree::random_weighted_tree(internal, 2, 1..=6, &mut rng).unwrap();
        prop_assume!(t.max_in_degree() <= 2);
        let leaves = t.sources();
        let mut initial = Vec::new();
        let mut reuse = Vec::new();
        for &l in leaves {
            if rand::Rng::gen_bool(&mut rng, 1.0 / 3.0) { initial.push(l); }
            if rand::Rng::gen_bool(&mut rng, 1.0 / 3.0) { reuse.push(l); }
        }
        let states = MemoryStates::new(initial, reuse);
        // scale_weights preserves node ids, so the same state sets apply.
        let scaled = scale_weights(&t, s);
        let minb = min_feasible_budget(&t);
        for b in [minb, minb + 2, (minb + t.total_weight()) / 2, t.total_weight() + 8] {
            prop_assert_eq!(
                memstate::min_cost(&scaled, s * b, &states),
                memstate::min_cost(&t, b, &states).map(|c| s * c),
                "budget {}", b
            );
        }
    }
}
