//! Property-based tests over randomly generated workloads: the invariants
//! every scheduler must uphold regardless of shape, weights, or budget.

use pebblyn::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_scheme() -> impl Strategy<Value = WeightScheme> {
    prop_oneof![
        (1u64..=32).prop_map(WeightScheme::Equal),
        (1u64..=16).prop_map(WeightScheme::DoubleAccumulator),
        (1u64..=16, 1u64..=32).prop_map(|(i, c)| WeightScheme::Custom {
            input: i,
            compute: c
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The k-ary DP emits valid schedules whose replayed cost equals the
    /// DP's claim, sits at or above the lower bound, and is monotone in
    /// budget — on arbitrary random weighted trees.
    #[test]
    fn kary_invariants(seed in 0u64..5000, internal in 1usize..7, kmax in 1usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = tree::random_weighted_tree(internal, kmax, 1..=9, &mut rng).unwrap();
        let lb = algorithmic_lower_bound(&t);
        let minb = min_feasible_budget(&t);
        let mut prev: Option<Weight> = None;
        let mut b = minb;
        let step = t.weight_gcd().max(1);
        while b <= t.total_weight() {
            let cost = kary::min_cost(&t, b);
            let sched = kary::schedule(&t, b);
            prop_assert_eq!(cost.is_some(), sched.is_some());
            if let (Some(c), Some(s)) = (cost, sched) {
                let stats = validate_schedule(&t, b, &s).expect("valid schedule");
                prop_assert_eq!(stats.cost, c);
                prop_assert!(c >= lb);
                prop_assert!(stats.peak_red_weight <= b);
                if let Some(p) = prev {
                    prop_assert!(c <= p);
                }
                prev = Some(c);
            }
            b += step;
        }
        // Ample budget reaches the lower bound on trees.
        prop_assert_eq!(kary::min_cost(&t, t.total_weight()), Some(lb));
    }

    /// DWT invariants across random (n, d, scheme) combinations, including
    /// equality between cost-only and schedule-emitting paths.
    #[test]
    fn dwt_invariants(k in 1usize..5, d in 1usize..5, scheme in arb_scheme()) {
        let n = k << d;
        let dwt = DwtGraph::new(n, d, scheme).unwrap();
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        let minb = min_feasible_budget(g);
        for b in [minb, minb + g.weight_gcd(), g.total_weight() / 2, g.total_weight()] {
            if b < minb { continue; }
            let cost = dwt_opt::min_cost(&dwt, b);
            if let Some(c) = cost {
                let s = dwt_opt::schedule(&dwt, b).expect("schedule when cost exists");
                let stats = validate_schedule(g, b, &s).expect("valid");
                prop_assert_eq!(stats.cost, c);
                prop_assert!(c >= lb);
            }
        }
        prop_assert_eq!(dwt_opt::min_cost(&dwt, g.total_weight()), Some(lb));
    }

    /// The naive existence-witness schedule is valid exactly when
    /// Proposition 2.3 says a schedule exists.
    #[test]
    fn naive_matches_existence(seed in 0u64..5000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = pebblyn::graphs::testgraphs::random_layered_dag(3, 4, 1..=8, &mut rng).unwrap();
        let minb = min_feasible_budget(&g);
        prop_assert!(schedule_exists(&g, minb));
        prop_assert!(!schedule_exists(&g, minb - 1));
        let s = naive::schedule(&g, minb).expect("witness at min feasible");
        let stats = validate_schedule(&g, minb, &s).expect("valid witness");
        prop_assert_eq!(stats.cost, naive::cost(&g));
        prop_assert!(naive::schedule(&g, minb - 1).is_none());
    }

    /// Layer-by-layer emits valid schedules whenever it emits at all, on
    /// random DWT shapes and budgets.
    #[test]
    fn layer_by_layer_validity(k in 1usize..4, d in 1usize..5, extra in 0u64..64) {
        let n = k << d;
        let dwt = DwtGraph::new(n, d, WeightScheme::Equal(4)).unwrap();
        let g = dwt.cdag();
        let b = min_feasible_budget(g) + extra * g.weight_gcd();
        if let Some(s) = layer_by_layer::schedule(&dwt, b, LayerByLayerOptions::default()) {
            let stats = validate_schedule(g, b, &s).expect("valid");
            prop_assert!(stats.cost >= algorithmic_lower_bound(g));
        }
    }

    /// MVM tiling: every config in range produces a schedule whose
    /// validator-measured peak and cost equal the analytic formulas.
    #[test]
    fn tiling_formulas_exact(m in 2usize..7, n in 1usize..7, scheme in arb_scheme()) {
        let mvm = MvmGraph::new(m, n, scheme).unwrap();
        for h in 1..=m {
            for vr in [0, n / 2, n] {
                let cfg = TilingConfig::new(h, vr, n);
                let s = mvm_tiling::schedule_with_config(&mvm, &cfg);
                let peak = mvm_tiling::config_peak(&mvm, &cfg);
                let stats = validate_schedule(mvm.cdag(), peak, &s).expect("valid at peak");
                prop_assert_eq!(stats.peak_red_weight, peak);
                prop_assert_eq!(stats.cost, mvm_tiling::config_cost(&mvm, &cfg));
            }
        }
    }

    /// The machine and the validator agree on every measurable of a
    /// schedule (cost, peak) for random DWT workloads.
    #[test]
    fn machine_and_validator_agree(seed in 0u64..1000, d in 1usize..5) {
        let n = 1usize << d;
        let dwt = DwtGraph::new(n, d, WeightScheme::Equal(16)).unwrap();
        let g = dwt.cdag();
        let b = min_feasible_budget(g) + 32;
        let s = dwt_opt::schedule(&dwt, b).expect("feasible");
        let stats = validate_schedule(g, b, &s).expect("valid");

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let signal: Vec<f64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0)).collect();
        let ops = haar::op_table(&dwt);
        let env = haar::inputs_for(&dwt, &signal);
        let report = Machine::new(g, &ops, b).run(&s, &env).expect("executes");
        prop_assert_eq!(report.io_bits, stats.cost);
        prop_assert_eq!(report.peak_fast_bits, stats.peak_red_weight);
    }

    /// The memory-state planner (Eq. 8 with emission) always matches the
    /// cost-only DP and replays to the same cost under the context
    /// semantics — on random binary trees with random initial/reuse sets.
    #[test]
    fn memstate_planner_matches_cost_dp(seed in 0u64..3000, internal in 1usize..6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Binary trees only (the planner covers k = 2).
        let t = tree::random_weighted_tree(internal, 2, 1..=6, &mut rng).unwrap();
        prop_assume!(t.max_in_degree() <= 2);
        // Random states: each leaf flips into I and/or R with p = 1/3.
        let leaves = t.sources();
        let mut initial = Vec::new();
        let mut reuse = Vec::new();
        for &l in &leaves {
            if rand::Rng::gen_bool(&mut rng, 1.0 / 3.0) { initial.push(l); }
            if rand::Rng::gen_bool(&mut rng, 1.0 / 3.0) { reuse.push(l); }
        }
        let states = MemoryStates::new(initial, reuse);
        let minb = min_feasible_budget(&t);
        for b in [minb, minb + 3, minb + 9, t.total_weight() + 8] {
            let cost = memstate::min_cost(&t, b, &states);
            let ctx = memstate::plan(&t, b, &states);
            prop_assert_eq!(cost, ctx.as_ref().map(|c| c.cost), "budget {}", b);
            if let Some(ctx) = ctx {
                let replayed = memstate::validate_in_context(&t, b, &states, &ctx)
                    .map_err(|e| TestCaseError::fail(format!("b={b}: {e}")))?;
                prop_assert_eq!(replayed, ctx.cost);
            }
        }
    }

    /// Exact solver sanity on random tiny trees: never beaten by, and never
    /// beats, the k-ary DP (i.e. they agree).
    #[test]
    fn exact_agrees_with_kary_on_tiny_trees(seed in 0u64..300) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = tree::random_weighted_tree(2, 2, 1..=3, &mut rng).unwrap();
        prop_assume!(t.len() <= 7);
        let minb = min_feasible_budget(&t);
        for b in [minb, minb + 1, minb + 3, t.total_weight()] {
            prop_assert_eq!(kary::min_cost(&t, b), exact_min_cost(&t, b));
        }
    }
}
