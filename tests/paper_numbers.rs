//! The paper's headline numbers, reproduced as assertions.
//!
//! Table 1 word counts are exact reproductions; circuit-level quantities
//! (Figure 7) are checked as ranges because the SRAM model is calibrated,
//! not PDK-identical — see EXPERIMENTS.md for measured-vs-paper values.

use pebblyn::prelude::*;
use pebblyn::synth::sram::reduction_pct;

fn dwt_min_memory(scheme: WeightScheme) -> Weight {
    let dwt = DwtGraph::new(256, 8, scheme).unwrap();
    let g = dwt.cdag();
    min_memory(
        |b| dwt_opt::min_cost(&dwt, b),
        algorithmic_lower_bound(g),
        MinMemoryOptions::for_graph(g).monotone(true),
    )
    .expect("optimum reaches the bound")
}

/// Table 1, row 1: Equal DWT(256, 8), Optimum — 10 words (160 bits),
/// power-of-two capacity 256 bits.
#[test]
fn table1_dwt_equal_optimum() {
    let bits = dwt_min_memory(WeightScheme::Equal(16));
    assert_eq!(bits, 160);
    assert_eq!(bits / 16, 10);
    assert_eq!(round_pow2(bits), 256);
}

/// Table 1, row 3: DA DWT(256, 8), Optimum — 18 words (288 bits), pow2 512.
#[test]
fn table1_dwt_da_optimum() {
    let bits = dwt_min_memory(WeightScheme::DoubleAccumulator(16));
    assert_eq!(bits, 288);
    assert_eq!(bits / 16, 18);
    assert_eq!(round_pow2(bits), 512);
}

/// Table 1, rows 5 & 7: MVM(96, 120) tiling — 99 words Equal (pow2 2048),
/// 126 words DA (pow2 2048).  Note the paper's observation that tiling
/// *equalises* the power-of-two capacity across both precisions.
#[test]
fn table1_mvm_tiling() {
    let eq = MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap();
    let eq_bits = mvm_tiling::min_memory(&eq);
    assert_eq!(eq_bits, 99 * 16);
    assert_eq!(round_pow2(eq_bits), 2048);

    let da = MvmGraph::new(96, 120, WeightScheme::DoubleAccumulator(16)).unwrap();
    let da_bits = mvm_tiling::min_memory(&da);
    assert_eq!(da_bits, 126 * 16);
    assert_eq!(round_pow2(da_bits), 2048);
}

/// Table 1, rows 6 & 8: IOOpt UB — 193 words Equal (pow2 4096), 289 words
/// DA (pow2 8192).
#[test]
fn table1_ioopt_ub() {
    let eq = IoOptMvmModel::new(96, 120, WeightScheme::Equal(16));
    assert_eq!(eq.min_memory(), 193 * 16);
    assert_eq!(round_pow2(eq.min_memory()), 4096);

    let da = IoOptMvmModel::new(96, 120, WeightScheme::DoubleAccumulator(16));
    assert_eq!(da.min_memory(), 289 * 16);
    assert_eq!(round_pow2(da.min_memory()), 8192);
}

/// Table 1, rows 2 & 4: the layer-by-layer baseline needs hundreds of
/// words where the optimum needs tens.  The paper reports 445 (Equal) and
/// 636 (DA); our reading of the spill policy lands in the same regime —
/// the assertion checks the *order of magnitude* relation that drives every
/// downstream circuit number (a 97%+ reduction claim needs LbL ≳ 40x).
#[test]
fn table1_layer_by_layer_scale() {
    for (scheme, opt_words) in [
        (WeightScheme::Equal(16), 10u64),
        (WeightScheme::DoubleAccumulator(16), 18u64),
    ] {
        let dwt = DwtGraph::new(256, 8, scheme).unwrap();
        let g = dwt.cdag();
        let lbl_bits = min_memory(
            |b| layer_by_layer::cost(&dwt, b, LayerByLayerOptions::default()),
            algorithmic_lower_bound(g),
            MinMemoryOptions::for_graph(g),
        )
        .expect("baseline reaches the bound");
        let lbl_words = lbl_bits / 16;
        assert!(
            lbl_words >= 8 * opt_words,
            "{scheme}: layer-by-layer needs {lbl_words} words vs optimum {opt_words}"
        );
        assert!(
            lbl_words <= 1024,
            "{scheme}: layer-by-layer min memory {lbl_words} words is implausibly large"
        );
    }
}

/// Figure 5 anchors: at ample memory every curve meets the algorithmic
/// lower bound; the bound itself matches hand-computed values.
#[test]
fn figure5_lower_bound_anchors() {
    // Equal DWT(256,8): inputs 256; sinks: coefficients of layers 2..9
    // (128+64+...+1 = 255... plus final average 1) = 256. LB = 512 words.
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    assert_eq!(algorithmic_lower_bound(dwt.cdag()), (256 + 256) * 16);

    // Equal MVM(96,120): inputs 96*120 + 120, outputs 96.
    let mvm = MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap();
    assert_eq!(
        algorithmic_lower_bound(mvm.cdag()),
        ((96 * 120 + 120) + 96) * 16
    );

    // DA variants double only the computed sinks.
    let dwt_da = DwtGraph::new(256, 8, WeightScheme::DoubleAccumulator(16)).unwrap();
    assert_eq!(algorithmic_lower_bound(dwt_da.cdag()), 256 * 16 + 256 * 32);
}

/// Figure 7's qualitative claims on the synthesised memories.
#[test]
fn figure7_circuit_claims() {
    let p = Process::default();
    let synth = |bits: u64| SramConfig::words16(bits).synthesize(&p);

    // DWT Equal: 256 vs 8192 — large area and leakage reductions.
    let (ours, base) = (synth(256), synth(8192));
    assert!(reduction_pct(base.area_l2, ours.area_l2) > 60.0);
    assert!(reduction_pct(base.leakage_mw, ours.leakage_mw) > 40.0);

    // MVM Equal: 2048 vs 4096 — a 2x capacity step, modest reduction.
    let (ours, base) = (synth(2048), synth(4096));
    let r = reduction_pct(base.area_l2, ours.area_l2);
    assert!((10.0..50.0).contains(&r));

    // Throughput performance is nearly unchanged across all sizes (7e/7f).
    let small = synth(256);
    let large = synth(16384);
    let perf_drop = (small.read_gbps - large.read_gbps) / small.read_gbps;
    assert!(perf_drop < 0.2, "read throughput drop {perf_drop}");
}

/// Figure 6 anchors: minimum memory grows with n for the baseline but
/// stays logarithmic for the optimum (DWT), and the tiling/IOOpt gap holds
/// across n (MVM).
#[test]
fn figure6_scaling_anchors() {
    // DWT(n, d*) optimum at n = 64 vs n = 256: depth grows by 2, so the
    // optimum grows by ~2 words only.
    let opt64 = {
        let dwt = DwtGraph::new(64, 6, WeightScheme::Equal(16)).unwrap();
        min_memory(
            |b| dwt_opt::min_cost(&dwt, b),
            algorithmic_lower_bound(dwt.cdag()),
            MinMemoryOptions::for_graph(dwt.cdag()).monotone(true),
        )
        .unwrap()
    };
    let opt256 = dwt_min_memory(WeightScheme::Equal(16));
    assert_eq!(opt64, 8 * 16);
    assert_eq!(opt256 - opt64, 2 * 16);

    // MVM(96, n): tiling needs min(n + const, m + const) words; IOOpt needs
    // 2m + 1 regardless — so tiling wins everywhere and the gap grows as n
    // shrinks.
    for n in [10, 60, 120] {
        let mvm = MvmGraph::new(96, n, WeightScheme::Equal(16)).unwrap();
        let model = IoOptMvmModel::for_graph(&mvm);
        assert!(mvm_tiling::min_memory(&mvm) < model.min_memory());
    }
}
