//! End-to-end integration: schedules from every generator executed on the
//! two-level memory machine with real kernel arithmetic.

use pebblyn::kernels::mvm as mvm_kernel;
use pebblyn::kernels::signal::SignalConfig;
use pebblyn::prelude::*;

#[test]
fn optimal_dwt_schedule_computes_the_transform() {
    let dwt = DwtGraph::new(32, 5, WeightScheme::Equal(16)).unwrap();
    let g = dwt.cdag();
    let budget = 7 * 16 + 48; // comfortably above the optimum's needs
    let schedule = dwt_opt::schedule(&dwt, budget).unwrap();

    let signal = signal::generate_channel(&SignalConfig {
        samples: 32,
        seed: 3,
        ..Default::default()
    });
    let ops = haar::op_table(&dwt);
    let env = haar::inputs_for(&dwt, &signal);
    let report = Machine::new(g, &ops, budget)
        .run(&schedule, &env)
        .expect("optimal schedule executes");

    // Every output value matches the direct Haar transform.
    let levels = haar::haar_dwt(&signal, 5);
    for (k, level) in levels.iter().enumerate() {
        let layer = k + 2;
        for (t, &c) in level.coefficients.iter().enumerate() {
            let node = dwt.node(layer, 2 * t + 2);
            assert!((report.outputs[&node] - c).abs() < 1e-9);
        }
    }
    let root = dwt.tree_roots()[0];
    assert!((report.outputs[&root] - levels[4].averages[0]).abs() < 1e-9);
}

#[test]
fn tiling_mvm_schedule_computes_the_product() {
    for scheme in WeightScheme::paper_configs() {
        let mvm = MvmGraph::new(9, 7, scheme).unwrap();
        let g = mvm.cdag();
        let budget = mvm_tiling::min_memory(&mvm);
        let schedule = mvm_tiling::schedule(&mvm, budget).unwrap();

        let a = mvm_kernel::Matrix::new(
            9,
            7,
            (0..63)
                .map(|i| ((i * 37) % 19) as f64 / 19.0 - 0.5)
                .collect(),
        );
        let x: Vec<f64> = (0..7).map(|i| (i as f64 - 3.0) / 4.0).collect();
        let ops = mvm_kernel::op_table(&mvm);
        let env = mvm_kernel::inputs_for(&mvm, &a, &x);
        let report = Machine::new(g, &ops, budget)
            .run(&schedule, &env)
            .expect("tiling schedule executes");

        let expected = mvm_kernel::mvm_ref(&a, &x);
        for r in 1..=9 {
            assert!(
                (report.outputs[&mvm.output(r)] - expected[r - 1]).abs() < 1e-9,
                "row {r} ({scheme})"
            );
        }
        // Machine-measured I/O equals the validator's cost.
        let stats = validate_schedule(g, budget, &schedule).unwrap();
        assert_eq!(report.io_bits, stats.cost);
        assert_eq!(report.peak_fast_bits, stats.peak_red_weight);
    }
}

#[test]
fn layer_by_layer_schedule_computes_the_transform_under_pressure() {
    let dwt = DwtGraph::new(16, 4, WeightScheme::DoubleAccumulator(16)).unwrap();
    let g = dwt.cdag();
    // A budget tight enough to force spills.
    let budget = min_feasible_budget(g) + 32;
    let schedule = layer_by_layer::schedule(&dwt, budget, LayerByLayerOptions::default()).unwrap();

    let signal: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
    let ops = haar::op_table(&dwt);
    let env = haar::inputs_for(&dwt, &signal);
    let report = Machine::new(g, &ops, budget)
        .run(&schedule, &env)
        .expect("baseline schedule executes");

    let levels = haar::haar_dwt(&signal, 4);
    let root = dwt.tree_roots()[0];
    assert!((report.outputs[&root] - levels[3].averages[0]).abs() < 1e-9);
}

#[test]
fn naive_schedule_executes_any_graph() {
    let mvm = MvmGraph::new(4, 3, WeightScheme::Equal(8)).unwrap();
    let g = mvm.cdag();
    let budget = min_feasible_budget(g);
    let schedule = naive::schedule(g, budget).unwrap();

    let a = mvm_kernel::Matrix::new(4, 3, (0..12).map(|i| i as f64).collect());
    let x = vec![1.0, -1.0, 2.0];
    let ops = mvm_kernel::op_table(&mvm);
    let env = mvm_kernel::inputs_for(&mvm, &a, &x);
    let report = Machine::new(g, &ops, budget)
        .run(&schedule, &env)
        .expect("naive schedule executes at the minimum feasible budget");
    let expected = mvm_kernel::mvm_ref(&a, &x);
    for r in 1..=4 {
        assert!((report.outputs[&mvm.output(r)] - expected[r - 1]).abs() < 1e-9);
    }
}

#[test]
fn exact_schedules_execute_too() {
    let dwt = DwtGraph::new(4, 2, WeightScheme::Equal(4)).unwrap();
    let g = dwt.cdag();
    let budget = min_feasible_budget(g);
    let (cost, schedule) = exact_optimal_schedule(g, budget).unwrap();

    let signal = vec![1.0, 2.0, 3.0, 4.0];
    let ops = haar::op_table(&dwt);
    let env = haar::inputs_for(&dwt, &signal);
    let report = Machine::new(g, &ops, budget)
        .run(&schedule, &env)
        .expect("exact schedule executes");
    assert_eq!(report.io_bits, cost);
}

#[test]
fn energy_model_separates_schedulers() {
    // The optimal schedule must never spend more transfer energy than the
    // naive one on the same workload.
    let dwt = DwtGraph::new(64, 6, WeightScheme::Equal(16)).unwrap();
    let g = dwt.cdag();
    let budget = g.total_weight();
    let signal = vec![0.5; 64];
    let ops = haar::op_table(&dwt);
    let env = haar::inputs_for(&dwt, &signal);
    let machine = Machine::new(g, &ops, budget);

    let opt = machine
        .run(&dwt_opt::schedule(&dwt, budget).unwrap(), &env)
        .unwrap();
    let nv = machine
        .run(&naive::schedule(g, budget).unwrap(), &env)
        .unwrap();
    assert!(opt.energy.total_pj() < nv.energy.total_pj());
    assert!(opt.io_bits < nv.io_bits);
}
