//! End-to-end 2-D DWT: the generic schedulers drive an image transform
//! through the memory machine, with every subband checked against the
//! reference — the "less regular CDAGs" extension exercised at system
//! level.

use pebblyn::graphs::dwt2d::Dwt2dGraph;
use pebblyn::kernels::haar2d;
use pebblyn::prelude::*;

fn test_image(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|r| {
            (0..n)
                .map(|c| ((r as f64 * 0.7).sin() + (c as f64 * 0.3).cos()) * 3.0)
                .collect()
        })
        .collect()
}

#[test]
fn belady_schedules_execute_2d_transform() {
    let g = Dwt2dGraph::new(8, 3, WeightScheme::Equal(16)).unwrap();
    let cdag = g.cdag();
    let budget = min_feasible_budget(cdag) + 8 * 16;
    let schedule = greedy_belady::schedule(cdag, budget).expect("belady schedules 2-D DWT");
    let stats = validate_schedule(cdag, budget, &schedule).unwrap();
    assert!(stats.cost >= algorithmic_lower_bound(cdag));

    let image = test_image(8);
    let ops = haar2d::op_table(&g);
    let env = haar2d::inputs_for(&g, &image);
    let report = Machine::new(cdag, &ops, budget)
        .run(&schedule, &env)
        .expect("2-D transform executes");

    let bands = haar2d::haar_dwt2d(&image, 3);
    // Every detail quadrant node is a sink; check them all.
    for (lvl, band) in bands.iter().enumerate() {
        let q = g.level(lvl + 1);
        let half = band.lh.len();
        for t in 0..half {
            for c in 0..half {
                for (nodes, vals) in [(&q.lh, &band.lh), (&q.hl, &band.hl), (&q.hh, &band.hh)] {
                    let got = report.outputs[&nodes[t][c]];
                    assert!((got - vals[t][c]).abs() < 1e-9, "level {lvl} ({t},{c})");
                }
            }
        }
    }
    // Final LL.
    let top = g.level(3);
    assert!((report.outputs[&top.ll[0][0]] - bands[2].ll[0][0]).abs() < 1e-9);
}

#[test]
fn layer_by_layer_handles_2d_graphs() {
    let g = Dwt2dGraph::new(8, 2, WeightScheme::DoubleAccumulator(16)).unwrap();
    let cdag = g.cdag();
    let budget = min_feasible_budget(cdag) + 128;
    let schedule = layer_by_layer::schedule(&g, budget, LayerByLayerOptions::default()).unwrap();
    let stats = validate_schedule(cdag, budget, &schedule).unwrap();
    assert!(stats.cost >= algorithmic_lower_bound(cdag));
}

#[test]
fn belady_needs_less_memory_than_fifo_for_lb_on_2d() {
    // The 2-D transform's column pass creates long-range reuse that a
    // FIFO policy handles badly; quantify on a 16x16 frame.
    let g = Dwt2dGraph::new(16, 2, WeightScheme::Equal(16)).unwrap();
    let cdag = g.cdag();
    let lb = algorithmic_lower_bound(cdag);
    // Probe on a coarse 4-word lattice: plenty for an ordering comparison.
    let opts = MinMemoryOptions {
        step: 4 * 16,
        ..MinMemoryOptions::for_graph(cdag)
    };
    let belady_min =
        min_memory(|b| greedy_belady::cost(cdag, b), lb, opts).expect("belady reaches LB");
    let fifo_min = min_memory(
        |b| layer_by_layer::cost(&g, b, LayerByLayerOptions::default()),
        lb,
        opts,
    )
    .expect("fifo reaches LB");
    assert!(
        belady_min <= fifo_min,
        "belady {belady_min} vs fifo {fifo_min}"
    );
}

#[test]
fn exact_certifies_small_2d_instance() {
    // 4x4 single level: four independent 2x2 blocks; the exact solver can
    // handle one block's component... the whole graph is 48 nodes, so
    // check per component instead.
    let g = Dwt2dGraph::new(4, 1, WeightScheme::Equal(2)).unwrap();
    let cdag = g.cdag();
    // The four blocks are isomorphic; certify one.
    for comp in cdag.weakly_connected_components().into_iter().take(1) {
        let (sub, _) = cdag.induced_subgraph(&comp);
        let lb = algorithmic_lower_bound(&sub);
        // Scan upward for the fundamental minimum memory (the budgets are
        // tiny, so the exact search stays fast); Belady must match the
        // exact optimum once the lower bound is reachable.
        let minb = min_feasible_budget(&sub);
        let mut budget = minb;
        while exact_min_cost(&sub, budget) != Some(lb) {
            let exact_tight = exact_min_cost(&sub, budget).unwrap();
            assert!(exact_tight > lb);
            budget += 2;
            assert!(budget <= sub.total_weight(), "LB must become reachable");
        }
        let s = greedy_belady::schedule(&sub, budget).unwrap();
        assert_eq!(validate_schedule(&sub, budget, &s).unwrap().cost, lb);
        // At the minimum feasible budget the exact solver still schedules,
        // paying extra I/O for the shared pixels.
        let exact_tight = exact_min_cost(&sub, minb).unwrap();
        assert!(exact_tight >= lb);
        let belady_tight = greedy_belady::cost(&sub, minb).unwrap();
        assert!(belady_tight >= exact_tight);
    }
}
