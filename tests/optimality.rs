//! Cross-scheduler optimality relations: the orderings the paper's theory
//! guarantees, checked across whole budget sweeps.

use pebblyn::prelude::*;

fn budget_sweep(g: &Cdag) -> Vec<Weight> {
    let minb = min_feasible_budget(g);
    let maxb = g.total_weight();
    let step = g.weight_gcd().max(1);
    let mut out = Vec::new();
    let mut b = minb;
    while b <= maxb {
        out.push(b);
        b += step;
    }
    out
}

/// Theorem 3.5: the DWT DP dominates every other generator at every budget.
#[test]
fn dwt_optimum_dominates_baselines() {
    for scheme in WeightScheme::paper_configs() {
        let dwt = DwtGraph::new(16, 4, scheme).unwrap();
        let g = dwt.cdag();
        let naive_cost = naive::cost(g);
        for b in budget_sweep(g) {
            let opt = dwt_opt::min_cost(&dwt, b).expect("feasible");
            if let Some(lbl) = layer_by_layer::cost(&dwt, b, LayerByLayerOptions::default()) {
                assert!(opt <= lbl, "opt {opt} > layer-by-layer {lbl} at b={b}");
            }
            assert!(opt <= naive_cost);
            assert!(opt >= algorithmic_lower_bound(g));
        }
    }
}

/// Lemma 3.4: the full DWT cost decomposes into the pruned-tree optimum
/// plus one store per pruned coefficient.
#[test]
fn pruning_decomposition_holds() {
    for scheme in WeightScheme::paper_configs() {
        // n = 2^d gives a single tree so the pruned graph is k-ary-schedulable.
        let dwt = DwtGraph::new(16, 4, scheme).unwrap();
        let g = dwt.cdag();
        let (pruned, _) = dwt.prune();
        let coeff_weight: Weight = dwt.pruned_nodes().iter().map(|&v| g.weight(v)).sum();
        for b in budget_sweep(g) {
            let full = dwt_opt::min_cost(&dwt, b);
            let tree = kary::min_cost(&pruned, b);
            assert_eq!(
                full,
                tree.map(|c| c + coeff_weight),
                "Lemma 3.4 decomposition at b={b} ({scheme})"
            );
        }
    }
}

/// The k-ary DP and the DWT DP agree on DWT graphs pruned to trees, and
/// both respect budget monotonicity.
#[test]
fn monotone_cost_in_budget() {
    let dwt = DwtGraph::new(32, 5, WeightScheme::DoubleAccumulator(16)).unwrap();
    let mut prev: Option<Weight> = None;
    for b in budget_sweep(dwt.cdag()) {
        let c = dwt_opt::min_cost(&dwt, b).unwrap();
        if let Some(p) = prev {
            assert!(c <= p);
        }
        prev = Some(c);
    }
}

/// §4.3 + §5.2: tiling dominates the IOOpt upper-bound model at every
/// budget where both are defined (the two reasons are the flexible split
/// and write-once outputs).
#[test]
fn tiling_dominates_ioopt_ub() {
    for scheme in WeightScheme::paper_configs() {
        let mvm = MvmGraph::new(12, 10, scheme).unwrap();
        let model = IoOptMvmModel::for_graph(&mvm);
        let mut b = 16;
        while b <= mvm.cdag().total_weight() {
            if let (Some(tiling), Some(ub)) = (mvm_tiling::min_cost(&mvm, b), model.upper_bound(b))
            {
                assert!(
                    tiling <= ub,
                    "tiling {tiling} > IOOpt UB {ub} at b={b} ({scheme})"
                );
            }
            b += 16;
        }
    }
}

/// The tiling schedule is certified optimal (not merely good) at the
/// budgets the paper's Table 1 uses, via the exact solver on a small MVM.
#[test]
fn tiling_is_exactly_optimal_at_its_min_memory_small() {
    let mvm = MvmGraph::new(3, 2, WeightScheme::Equal(2)).unwrap();
    let g = mvm.cdag();
    let b = mvm_tiling::min_memory(&mvm);
    let tiling = mvm_tiling::min_cost(&mvm, b).unwrap();
    let exact = exact_min_cost(g, b).unwrap();
    assert_eq!(tiling, exact, "tiling matches the global optimum");
    assert_eq!(exact, algorithmic_lower_bound(g));
}

/// Below the minimum fast memory size, even the exact optimum cannot reach
/// the algorithmic lower bound — Definition 2.6 is about the problem, not
/// the scheduler.
#[test]
fn min_memory_is_fundamental_on_small_dwt() {
    let dwt = DwtGraph::new(4, 2, WeightScheme::Equal(2)).unwrap();
    let g = dwt.cdag();
    let lb = algorithmic_lower_bound(g);
    let opt_min = min_memory(
        |b| dwt_opt::min_cost(&dwt, b),
        lb,
        MinMemoryOptions::for_graph(g).monotone(true),
    )
    .unwrap();
    // The DP's minimum memory matches the exhaustive solver's.
    let exact_min =
        min_memory(|b| exact_min_cost(g, b), lb, MinMemoryOptions::for_graph(g)).unwrap();
    assert_eq!(opt_min, exact_min);
}

/// Weighted vs unweighted: in the Equal configuration the WRBPG reduces to
/// the classic red-blue pebble game — scaling all weights and the budget by
/// the word size scales costs linearly.
#[test]
fn equal_weights_scale_linearly() {
    let d1 = DwtGraph::new(16, 4, WeightScheme::Equal(1)).unwrap();
    let d16 = DwtGraph::new(16, 4, WeightScheme::Equal(16)).unwrap();
    for b in budget_sweep(d1.cdag()) {
        assert_eq!(
            dwt_opt::min_cost(&d1, b).map(|c| c * 16),
            dwt_opt::min_cost(&d16, b * 16)
        );
    }
}
