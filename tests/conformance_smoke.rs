//! Tier-1 smoke test for the differential conformance harness.
//!
//! Runs the full oracle (generator families, budget sweep, exact
//! certification, metamorphic transforms) at a fixed seed with a small
//! case budget, plus one mutation-smoke pass, so `cargo test -q`
//! exercises the whole subsystem deterministically in a few seconds.
//! The heavyweight randomized sweep lives in CI's `conformance` job
//! (`cargo run -p pebblyn-conformance -- --seed N --cases K`).

use pebblyn::conformance::{self, mutation_smoke, Config};

fn smoke_cfg() -> Config {
    Config {
        seed: 3,
        cases: 20,
        ..Config::default()
    }
}

#[test]
fn registry_conforms_at_the_pinned_seed() {
    let report = conformance::run(&smoke_cfg());
    assert_eq!(report.cases, 20);
    assert!(
        report.is_clean(),
        "conformance violations at seed 3:\n{}",
        report
            .failures
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The run must actually certify something against the exact optimum —
    // a harness that silently skips every exact comparison is vacuous.
    assert!(
        report.exact_certified >= report.budgets / 2,
        "only {} of {} probes exact-certified",
        report.exact_certified,
        report.budgets
    );
}

#[test]
fn injected_mutants_are_caught() {
    let reports = mutation_smoke(&smoke_cfg());
    assert!(!reports.is_empty());
    for r in &reports {
        assert!(
            r.caught,
            "mutant {} survived {} cases — the oracle has a hole",
            r.name, r.cases_tried
        );
        let ex = r.example.as_ref().expect("caught implies a counterexample");
        assert!(
            ex.shrunk.graph.len() <= 12,
            "{}: shrunk witness still has {} nodes",
            r.name,
            ex.shrunk.graph.len()
        );
    }
}
